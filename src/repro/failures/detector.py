"""Heartbeat-based failure detection (robustness extension).

The seed system's :class:`~repro.failures.injector.FailureInjector`
doubled as an omniscient oracle: the instant a host crashed, every
redirector was told.  Under the fault plane that shortcut is gone — a
crash is only a host that stops answering.  :class:`HeartbeatMonitor` is
how the control plane actually learns of it:

* every heartbeat interval each live host sends a best-effort heartbeat
  datagram to the monitor node (co-located with the load-report board);
* a host the monitor has not heard from for ``heartbeat_miss_threshold``
  intervals is marked down on every redirector (its replicas are masked,
  exactly as the injector used to do synchronously);
* as a fast path, ``request_failure_threshold`` *consecutive* request
  failures observed against one host mark it down immediately — request
  traffic probes hosts far more often than heartbeats do;
* a heartbeat arriving from a down-marked host marks it back up (this
  also self-heals false positives caused by heartbeat loss).

Between the crash and its detection, redirectors hold a *stale view*:
they keep routing requests to the dead host, which fail and are retried
against alternate replicas by the request flow in
:mod:`repro.core.protocol`.  That window — not a zero-cost oracle — is
what the availability metrics of this extension measure.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.network.faults import FaultConfig
from repro.network.message import MessageClass
from repro.obs.records import FailureDetectRecord
from repro.sim.process import PeriodicProcess
from repro.types import NodeId, Time

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.protocol import HostingSystem


class HeartbeatMonitor:
    """Learns host liveness from heartbeats and request outcomes."""

    def __init__(self, system: "HostingSystem", config: FaultConfig) -> None:
        self._system = system
        self._config = config
        self._last_seen: dict[NodeId, Time] = {}
        self._consecutive_failures: dict[NodeId, int] = {}
        self._down: set[NodeId] = set()
        self._process: PeriodicProcess | None = None
        #: Hosts marked down over the run (heartbeat + request-failure).
        self.detections = 0
        #: Hosts marked back up after a down verdict.
        self.recoveries = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        system = self._system
        now = system.sim.now
        for node in system.hosts:
            self._last_seen[node] = now
        self._process = PeriodicProcess(
            system.sim, self._config.heartbeat_interval, self._tick
        )

    def stop(self) -> None:
        if self._process is not None:
            self._process.stop()
            self._process = None

    # ------------------------------------------------------------------
    # Verdicts
    # ------------------------------------------------------------------

    def marked_down(self, node: NodeId) -> bool:
        return node in self._down

    def last_seen(self, node: NodeId) -> Time:
        return self._last_seen[node]

    def _tick(self, now: Time) -> None:
        system = self._system
        rpc = system.rpc
        monitor_node = system.board_node
        for node, host in system.hosts.items():
            if not host.available:
                continue
            delivered = rpc.oneway(
                node, monitor_node, system.control_bytes, MessageClass.CONTROL
            )
            if delivered:
                self._last_seen[node] = now
                if node in self._down:
                    self._mark_up(node, now)
        deadline = (
            self._config.heartbeat_interval * self._config.heartbeat_miss_threshold
        )
        for node, last in self._last_seen.items():
            if node not in self._down and now - last > deadline:
                self._mark_down(node, now, "heartbeat")

    def note_request_failure(self, node: NodeId, now: Time) -> None:
        """A request against ``node`` found it dead or replica-less."""
        if node in self._down:
            return
        count = self._consecutive_failures.get(node, 0) + 1
        self._consecutive_failures[node] = count
        if count >= self._config.request_failure_threshold:
            self._mark_down(node, now, "request-failures")

    def note_request_success(self, node: NodeId) -> None:
        """A request was serviced by ``node``: reset its failure streak."""
        if self._consecutive_failures:
            self._consecutive_failures.pop(node, None)

    # ------------------------------------------------------------------
    # State transitions
    # ------------------------------------------------------------------

    def _mark_down(self, node: NodeId, now: Time, reason: str) -> None:
        self._down.add(node)
        self._consecutive_failures.pop(node, None)
        self.detections += 1
        system = self._system
        for service in system.redirectors.services:
            service.set_host_available(node, False)
        if system.repair_daemon is not None:
            system.repair_daemon.on_host_down(node, now)
        if system.tracer is not None:
            system.tracer.record(
                FailureDetectRecord(
                    node=node,
                    down=True,
                    reason=reason,
                    last_seen=self._last_seen.get(node),
                )
            )

    def _mark_up(self, node: NodeId, now: Time) -> None:
        self._down.discard(node)
        self._consecutive_failures.pop(node, None)
        self.recoveries += 1
        system = self._system
        for service in system.redirectors.services:
            service.set_host_available(node, True)
        if system.repair_daemon is not None:
            system.repair_daemon.on_host_up(node, now)
        if system.consistency_plane is not None:
            # Reachable again (crash recovery or partition heal): clear
            # repair suppressions and reconcile the host immediately.
            system.consistency_plane.on_host_marked_up(node, now)
        if system.tracer is not None:
            system.tracer.record(
                FailureDetectRecord(node=node, down=False, reason="recovery")
            )
