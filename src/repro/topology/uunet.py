"""A deterministic synthetic stand-in for the 1999 UUNET backbone.

The paper evaluates on UUNET's backbone: "53 nodes in North America,
Europe, Pacific Rim, and Australia" (Section 6.1, citing a now-dead URL
for the map).  The protocol consumes only shortest-path hop counts and the
regional clustering of nodes, so any 53-node backbone with a realistic
structure exercises identical code paths.  We synthesise one with:

* four regions sized per :data:`repro.topology.regions.REGION_SIZES`
  (Eastern NA largest, Pacific smallest — qualitatively matching UUNET's
  1999 POP distribution);
* inside each region, 2–3 hub routers joined in a small core and metro
  POPs arranged in tiers — tier-1 POPs dual-home to hubs, deeper tiers
  dual-home to the tier above, as in real metro build-outs — plus one
  intra-region cross link for path diversity;
* sparse inter-region trunks between hubs only: two transcontinental US
  links, one transatlantic, one transpacific, and one Europe–Pacific
  link, mirroring the era's cable systems.

The construction is seeded and fully deterministic; the default seed
yields a backbone with hop-count diameter ≈ 9 and mean distance ≈ 4.5,
comparable to published measurements of late-1990s ISP backbones — and
sparse enough that proximity actually matters, which is the property the
paper's bandwidth results depend on.
"""

from __future__ import annotations

import networkx as nx

from repro.errors import TopologyError
from repro.sim.rng import RngFactory
from repro.topology.graph import Topology
from repro.topology.regions import REGION_SIZES, REGIONS, Region, region_ranges

#: Number of hub (core) routers per region.
_HUBS_PER_REGION: dict[Region, int] = {
    Region.WESTERN_NA: 3,
    Region.EASTERN_NA: 3,
    Region.EUROPE: 3,
    Region.PACIFIC: 2,
}

#: Number of POP tiers below the hubs in each region.  Tier-1 POPs home
#: to hubs; tier-k POPs home to tier-(k-1) POPs, as in real metro
#: build-outs where secondary cities hang off primary ones.
_TIERS = 4

#: Intra-region POP-to-POP shortcut links (path diversity; keeps any one
#: hub off the majority of a POP's shortest paths, as dual-homed metro
#: builds do in practice).
_CROSS_LINKS_PER_REGION = 1

#: Inter-region trunks as (region pair, number of links).  Trunk ``k``
#: joins hub ``k`` of each side (mod the hub count).
_TRUNKS: dict[tuple[Region, Region], int] = {
    (Region.WESTERN_NA, Region.EASTERN_NA): 2,
    (Region.EASTERN_NA, Region.EUROPE): 1,
    (Region.WESTERN_NA, Region.PACIFIC): 1,
    (Region.EUROPE, Region.PACIFIC): 1,
}


def uunet_backbone(seed: int = 1999) -> Topology:
    """Build the canonical 53-node synthetic UUNET backbone.

    The result is deterministic in ``seed``.  The default ``seed=1999`` is
    the topology used by all paper-reproduction scenarios and benchmarks.
    """
    rng = RngFactory(seed).stream("uunet")
    ranges = region_ranges()
    graph = nx.Graph()
    graph.add_nodes_from(range(sum(REGION_SIZES.values())))

    hubs: dict[Region, list[int]] = {}
    for region in REGIONS:
        ids = list(ranges[region])
        n_hubs = _HUBS_PER_REGION[region]
        if len(ids) <= n_hubs:
            raise TopologyError(f"region {region} too small for {n_hubs} hubs")
        region_hubs = ids[:n_hubs]
        hubs[region] = region_hubs
        # Hub core: a small cycle (equals a single link for two hubs).
        for i, hub in enumerate(region_hubs):
            graph.add_edge(hub, region_hubs[(i + 1) % n_hubs])
        # Metro POPs in _TIERS layers: tier-1 POPs dual-home to hubs,
        # deeper tiers dual-home to the tier above.  Dual parents keep
        # any single node off the overwhelming majority of a POP's
        # shortest paths while the tiering stretches the diameter to
        # realistic late-1990s values.
        spokes = ids[n_hubs:]
        width = max(2, -(-len(spokes) // _TIERS))  # ceil division
        previous_layer = region_hubs
        for start in range(0, len(spokes), width):
            layer = spokes[start : start + width]
            for index, spoke in enumerate(layer):
                parent_a = previous_layer[index % len(previous_layer)]
                parent_b = previous_layer[(index + 1) % len(previous_layer)]
                graph.add_edge(spoke, parent_a)
                if parent_b != parent_a:
                    graph.add_edge(spoke, parent_b)
            previous_layer = layer
        # Intra-region POP shortcut links for path diversity.
        added = 0
        attempts = 0
        while added < _CROSS_LINKS_PER_REGION and attempts < 200 and len(spokes) >= 4:
            attempts += 1
            a, b = rng.sample(spokes, 2)
            if not graph.has_edge(a, b):
                graph.add_edge(a, b)
                added += 1

    for (region_a, region_b), count in _TRUNKS.items():
        hubs_a, hubs_b = hubs[region_a], hubs[region_b]
        for k in range(count):
            graph.add_edge(hubs_a[k % len(hubs_a)], hubs_b[k % len(hubs_b)])

    regions = {node: region for region in REGIONS for node in ranges[region]}
    return Topology(graph, regions=regions, name=f"uunet-synthetic-{seed}")
