"""The :class:`Topology` wrapper around an undirected backbone graph.

A topology is the static substrate of a scenario: a connected, undirected
graph whose vertices are backbone nodes (router + co-located hosting
server, Section 2 of the paper) and whose edges are wide-area links.  All
links share the scenario's per-hop delay and bandwidth (Table 1), so edge
weights are uniform and "distance" means hop count.
"""

from __future__ import annotations

from typing import Iterable, Mapping

import networkx as nx

from repro.errors import TopologyError
from repro.topology.regions import Region
from repro.types import NodeId


class Topology:
    """A validated, immutable backbone graph.

    Parameters
    ----------
    graph:
        An undirected :class:`networkx.Graph` over integer node ids
        ``0..n-1``.  Must be connected, simple and free of self-loops.
    regions:
        Optional mapping of node id to :class:`Region`; required by the
        regional workload and the synthetic UUNET builder, optional for
        toy topologies.
    name:
        Human-readable label used in reports.
    """

    def __init__(
        self,
        graph: nx.Graph,
        *,
        regions: Mapping[NodeId, Region] | None = None,
        name: str = "topology",
    ) -> None:
        self._validate(graph, regions)
        self._graph = graph
        self._regions = dict(regions) if regions is not None else {}
        self.name = name

    @staticmethod
    def _validate(
        graph: nx.Graph, regions: Mapping[NodeId, Region] | None
    ) -> None:
        n = graph.number_of_nodes()
        if n == 0:
            raise TopologyError("topology must contain at least one node")
        if sorted(graph.nodes) != list(range(n)):
            raise TopologyError("node ids must be contiguous integers 0..n-1")
        if any(u == v for u, v in graph.edges):
            raise TopologyError("self-loops are not allowed")
        if n > 1 and not nx.is_connected(graph):
            raise TopologyError("topology must be connected")
        if regions is not None:
            missing = set(graph.nodes) - set(regions)
            if missing:
                raise TopologyError(f"nodes missing region assignment: {sorted(missing)}")

    @property
    def graph(self) -> nx.Graph:
        """The underlying :class:`networkx.Graph` (treat as read-only)."""
        return self._graph

    @property
    def num_nodes(self) -> int:
        return self._graph.number_of_nodes()

    @property
    def num_links(self) -> int:
        return self._graph.number_of_edges()

    @property
    def nodes(self) -> range:
        """Node ids in ascending order."""
        return range(self.num_nodes)

    def links(self) -> Iterable[tuple[NodeId, NodeId]]:
        """All undirected links as ``(min_id, max_id)`` pairs."""
        return ((min(u, v), max(u, v)) for u, v in self._graph.edges)

    def neighbors(self, node: NodeId) -> list[NodeId]:
        return sorted(self._graph.neighbors(node))

    def degree(self, node: NodeId) -> int:
        return self._graph.degree(node)

    def region(self, node: NodeId) -> Region:
        """The region of ``node``; raises if regions were not assigned."""
        try:
            return self._regions[node]
        except KeyError:
            raise TopologyError(f"no region assigned to node {node}") from None

    @property
    def has_regions(self) -> bool:
        return bool(self._regions)

    def nodes_in_region(self, region: Region) -> list[NodeId]:
        return [n for n in self.nodes if self._regions.get(n) == region]

    def diameter(self) -> int:
        """Hop-count diameter of the backbone."""
        return nx.diameter(self._graph)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Topology {self.name!r}: {self.num_nodes} nodes, "
            f"{self.num_links} links>"
        )
