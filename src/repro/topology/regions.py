"""Geographic regions of the synthetic UUNET backbone.

The paper's *regional* workload (Section 6.1) divides the 53 backbone
nodes into four regions: Western North America, Eastern North America,
Europe, and Pacific Rim + Australia.  Region membership is a property of
the topology; this module defines the region enum and the canonical
node-to-region assignment used by :func:`repro.topology.uunet.uunet_backbone`.
"""

from __future__ import annotations

import enum

from repro.errors import TopologyError
from repro.types import NodeId


class Region(enum.Enum):
    """One of the four geographic regions of the backbone."""

    WESTERN_NA = "western-na"
    EASTERN_NA = "eastern-na"
    EUROPE = "europe"
    PACIFIC = "pacific-australia"


#: Region sizes for the canonical 53-node backbone.  Eastern North America
#: is the largest (UUNET was headquartered in Virginia and densest on the
#: US east coast in 1999), Pacific Rim + Australia the smallest.
REGION_SIZES: dict[Region, int] = {
    Region.WESTERN_NA: 14,
    Region.EASTERN_NA: 19,
    Region.EUROPE: 12,
    Region.PACIFIC: 8,
}

#: All regions in canonical node-numbering order.
REGIONS: tuple[Region, ...] = (
    Region.WESTERN_NA,
    Region.EASTERN_NA,
    Region.EUROPE,
    Region.PACIFIC,
)


def region_ranges(
    sizes: dict[Region, int] | None = None,
) -> dict[Region, range]:
    """Contiguous node-id ranges per region, in :data:`REGIONS` order."""
    sizes = REGION_SIZES if sizes is None else sizes
    ranges: dict[Region, range] = {}
    start = 0
    for region in REGIONS:
        count = sizes.get(region, 0)
        ranges[region] = range(start, start + count)
        start += count
    return ranges


def region_of(node: NodeId, sizes: dict[Region, int] | None = None) -> Region:
    """Map a node id to its region under the canonical contiguous layout."""
    for region, ids in region_ranges(sizes).items():
        if node in ids:
            return region
    raise TopologyError(f"node {node} outside all region ranges")
