"""Additional topology families for tests, examples and ablations.

None of these are used by the paper-reproduction scenarios (those use the
synthetic UUNET backbone), but small regular topologies make protocol
behaviour easy to reason about in unit tests and examples, and random
geometric graphs let the ablation benchmarks check that results are not an
artifact of one particular backbone.
"""

from __future__ import annotations

import itertools
import math

import networkx as nx

from repro.errors import TopologyError
from repro.sim.rng import RngFactory
from repro.topology.graph import Topology
from repro.topology.regions import Region


def line_topology(n: int) -> Topology:
    """``n`` nodes in a path: 0 - 1 - ... - n-1."""
    if n < 1:
        raise TopologyError("line topology needs n >= 1")
    graph = nx.path_graph(n)
    return Topology(graph, name=f"line-{n}")


def ring_topology(n: int) -> Topology:
    """``n`` nodes in a cycle."""
    if n < 3:
        raise TopologyError("ring topology needs n >= 3")
    graph = nx.cycle_graph(n)
    return Topology(graph, name=f"ring-{n}")


def star_topology(n: int) -> Topology:
    """Node 0 is the hub; nodes 1..n-1 are spokes."""
    if n < 2:
        raise TopologyError("star topology needs n >= 2")
    graph = nx.star_graph(n - 1)
    return Topology(graph, name=f"star-{n}")


def grid_topology(rows: int, cols: int) -> Topology:
    """A ``rows x cols`` 4-neighbour mesh, nodes numbered row-major."""
    if rows < 1 or cols < 1:
        raise TopologyError("grid topology needs positive dimensions")
    graph = nx.Graph()
    graph.add_nodes_from(range(rows * cols))
    for r in range(rows):
        for c in range(cols):
            node = r * cols + c
            if c + 1 < cols:
                graph.add_edge(node, node + 1)
            if r + 1 < rows:
                graph.add_edge(node, node + cols)
    return Topology(graph, name=f"grid-{rows}x{cols}")


def two_cluster_topology(
    cluster_size: int = 4, bridge_length: int = 3
) -> Topology:
    """Two dense clusters joined by a path of ``bridge_length`` links.

    A miniature "America / Europe" world used throughout the tests and the
    motivating examples of Section 3: nodes ``0..cluster_size-1`` form
    clique A (region WESTERN_NA), the last ``cluster_size`` nodes form
    clique B (region EUROPE), and ``bridge_length - 1`` relay nodes
    (region EASTERN_NA) connect them.
    """
    if cluster_size < 1 or bridge_length < 1:
        raise TopologyError("cluster size and bridge length must be >= 1")
    relay_count = bridge_length - 1
    total = 2 * cluster_size + relay_count
    graph = nx.Graph()
    graph.add_nodes_from(range(total))
    cluster_a = list(range(cluster_size))
    relays = list(range(cluster_size, cluster_size + relay_count))
    cluster_b = list(range(cluster_size + relay_count, total))
    for u, v in itertools.combinations(cluster_a, 2):
        graph.add_edge(u, v)
    for u, v in itertools.combinations(cluster_b, 2):
        graph.add_edge(u, v)
    chain = [cluster_a[-1], *relays, cluster_b[0]]
    for u, v in zip(chain, chain[1:]):
        graph.add_edge(u, v)
    regions: dict[int, Region] = {}
    for node in cluster_a:
        regions[node] = Region.WESTERN_NA
    for node in relays:
        regions[node] = Region.EASTERN_NA
    for node in cluster_b:
        regions[node] = Region.EUROPE
    return Topology(
        graph, regions=regions, name=f"two-cluster-{cluster_size}x2+{bridge_length}"
    )


def random_geometric_topology(
    n: int, *, radius: float | None = None, seed: int = 7
) -> Topology:
    """A connected random geometric graph on the unit square.

    Nodes are placed uniformly at random; nodes within ``radius`` are
    linked.  The radius defaults to slightly above the connectivity
    threshold ``sqrt(ln n / (pi n))`` and is grown until the graph is
    connected, so the function always returns a valid topology.
    """
    if n < 2:
        raise TopologyError("random geometric topology needs n >= 2")
    rng = RngFactory(seed).stream("geometric")
    positions = {i: (rng.random(), rng.random()) for i in range(n)}
    r = radius if radius is not None else 1.2 * math.sqrt(math.log(n) / (math.pi * n))
    for _ in range(64):
        graph = nx.random_geometric_graph(n, r, pos=positions)
        if nx.is_connected(graph):
            plain = nx.Graph()
            plain.add_nodes_from(range(n))
            plain.add_edges_from(graph.edges)
            return Topology(plain, name=f"geo-{n}-r{r:.3f}")
        r *= 1.15
    raise TopologyError(f"could not build a connected geometric graph on {n} nodes")
