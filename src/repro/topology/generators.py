"""Additional topology families for tests, examples and ablations.

None of these are used by the paper-reproduction scenarios (those use the
synthetic UUNET backbone), but small regular topologies make protocol
behaviour easy to reason about in unit tests and examples, and random
geometric graphs let the ablation benchmarks check that results are not an
artifact of one particular backbone.
"""

from __future__ import annotations

import itertools
import math

import networkx as nx

from repro.errors import TopologyError
from repro.sim.rng import RngFactory
from repro.topology.graph import Topology
from repro.topology.regions import Region


def line_topology(n: int) -> Topology:
    """``n`` nodes in a path: 0 - 1 - ... - n-1."""
    if n < 1:
        raise TopologyError("line topology needs n >= 1")
    graph = nx.path_graph(n)
    return Topology(graph, name=f"line-{n}")


def ring_topology(n: int) -> Topology:
    """``n`` nodes in a cycle."""
    if n < 3:
        raise TopologyError("ring topology needs n >= 3")
    graph = nx.cycle_graph(n)
    return Topology(graph, name=f"ring-{n}")


def star_topology(n: int) -> Topology:
    """Node 0 is the hub; nodes 1..n-1 are spokes."""
    if n < 2:
        raise TopologyError("star topology needs n >= 2")
    graph = nx.star_graph(n - 1)
    return Topology(graph, name=f"star-{n}")


def grid_topology(rows: int, cols: int) -> Topology:
    """A ``rows x cols`` 4-neighbour mesh, nodes numbered row-major."""
    if rows < 1 or cols < 1:
        raise TopologyError("grid topology needs positive dimensions")
    graph = nx.Graph()
    graph.add_nodes_from(range(rows * cols))
    for r in range(rows):
        for c in range(cols):
            node = r * cols + c
            if c + 1 < cols:
                graph.add_edge(node, node + 1)
            if r + 1 < rows:
                graph.add_edge(node, node + cols)
    return Topology(graph, name=f"grid-{rows}x{cols}")


def two_cluster_topology(
    cluster_size: int = 4, bridge_length: int = 3
) -> Topology:
    """Two dense clusters joined by a path of ``bridge_length`` links.

    A miniature "America / Europe" world used throughout the tests and the
    motivating examples of Section 3: nodes ``0..cluster_size-1`` form
    clique A (region WESTERN_NA), the last ``cluster_size`` nodes form
    clique B (region EUROPE), and ``bridge_length - 1`` relay nodes
    (region EASTERN_NA) connect them.
    """
    if cluster_size < 1 or bridge_length < 1:
        raise TopologyError("cluster size and bridge length must be >= 1")
    relay_count = bridge_length - 1
    total = 2 * cluster_size + relay_count
    graph = nx.Graph()
    graph.add_nodes_from(range(total))
    cluster_a = list(range(cluster_size))
    relays = list(range(cluster_size, cluster_size + relay_count))
    cluster_b = list(range(cluster_size + relay_count, total))
    for u, v in itertools.combinations(cluster_a, 2):
        graph.add_edge(u, v)
    for u, v in itertools.combinations(cluster_b, 2):
        graph.add_edge(u, v)
    chain = [cluster_a[-1], *relays, cluster_b[0]]
    for u, v in zip(chain, chain[1:]):
        graph.add_edge(u, v)
    regions: dict[int, Region] = {}
    for node in cluster_a:
        regions[node] = Region.WESTERN_NA
    for node in relays:
        regions[node] = Region.EASTERN_NA
    for node in cluster_b:
        regions[node] = Region.EUROPE
    return Topology(
        graph, regions=regions, name=f"two-cluster-{cluster_size}x2+{bridge_length}"
    )


#: Default node annotations for the tree families.  Capacity is in
#: requests/sec (the scenario-level unit); QoS is a hop bound: the
#: maximum distance a node tolerates to its serving replica (the
#: Rehn-Sonigo tree-placement formulation the optimal solvers use).
DEFAULT_TREE_CAPACITY = 200.0


def _annotate_nodes(
    graph: nx.Graph, capacities: dict[int, float], qos: dict[int, int]
) -> None:
    for node, value in capacities.items():
        graph.nodes[node]["capacity"] = value
    for node, value in qos.items():
        graph.nodes[node]["qos"] = value


def node_capacities(
    topology: Topology, default: float = DEFAULT_TREE_CAPACITY
) -> dict[int, float]:
    """Per-node service capacity annotations (``default`` where absent)."""
    graph = topology.graph
    return {
        node: float(graph.nodes[node].get("capacity", default))
        for node in topology.nodes
    }


def node_qos(topology: Topology, default: int | None = None) -> dict[int, int]:
    """Per-node QoS hop-bound annotations.

    Nodes without an annotation get ``default``; a ``None`` default means
    "unbounded" and is reported as the topology's diameter (always a
    valid bound on a connected graph).
    """
    graph = topology.graph
    fallback = topology.diameter() if default is None else default
    return {
        node: int(graph.nodes[node].get("qos", fallback))
        for node in topology.nodes
    }


def balanced_tree_topology(
    branching: int,
    height: int,
    *,
    capacity: float = DEFAULT_TREE_CAPACITY,
    qos: int | None = None,
) -> Topology:
    """A complete ``branching``-ary tree of the given height, rooted at 0.

    Nodes are numbered breadth-first (node ``i``'s children are
    ``branching*i + 1 .. branching*i + branching``), so the layout is
    fully deterministic.  Every node carries a ``capacity`` annotation
    (requests/sec) and a ``qos`` hop bound (default: ``2 * height``, the
    diameter, i.e. effectively unbounded).
    """
    if branching < 1:
        raise TopologyError("balanced tree needs branching >= 1")
    if height < 0:
        raise TopologyError("balanced tree needs height >= 0")
    if capacity <= 0:
        raise TopologyError("tree capacity must be positive")
    n = sum(branching**level for level in range(height + 1))
    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    for node in range(n):
        for k in range(1, branching + 1):
            child = branching * node + k
            if child >= n:
                break
            graph.add_edge(node, child)
    bound = qos if qos is not None else max(1, 2 * height)
    _annotate_nodes(
        graph,
        {node: capacity for node in range(n)},
        {node: bound for node in range(n)},
    )
    return Topology(graph, name=f"ktree-{branching}x{height}")


def random_tree_topology(
    n: int,
    *,
    seed: int = 7,
    capacity_range: tuple[float, float] = (
        0.5 * DEFAULT_TREE_CAPACITY,
        1.5 * DEFAULT_TREE_CAPACITY,
    ),
    qos_range: tuple[int, int] | None = None,
) -> Topology:
    """A random-attachment tree on ``n`` nodes, rooted at 0.

    Node ``i`` (``i >= 1``) attaches to a uniformly random earlier node,
    drawn from the seed-derived ``"random-tree"`` stream — the same seed
    always yields the same tree, capacities and QoS bounds.  Capacities
    are uniform in ``capacity_range``; QoS hop bounds are integers in
    ``qos_range`` (default: ``(2, diameter)``, so bounds bite without
    making instances trivially infeasible).
    """
    if n < 1:
        raise TopologyError("random tree topology needs n >= 1")
    lo, hi = capacity_range
    if lo <= 0 or hi < lo:
        raise TopologyError(f"bad capacity range {capacity_range!r}")
    rng = RngFactory(seed).stream("random-tree")
    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    for node in range(1, n):
        graph.add_edge(rng.randrange(node), node)
    capacities = {node: rng.uniform(lo, hi) for node in range(n)}
    if qos_range is None:
        diameter = (
            max(
                max(lengths.values())
                for _, lengths in nx.shortest_path_length(graph)
            )
            if n > 1
            else 1
        )
        qos_range = (min(2, diameter), max(2, diameter))
    q_lo, q_hi = qos_range
    if q_lo < 0 or q_hi < q_lo:
        raise TopologyError(f"bad qos range {qos_range!r}")
    qos = {node: rng.randint(q_lo, q_hi) for node in range(n)}
    _annotate_nodes(graph, capacities, qos)
    return Topology(graph, name=f"rtree-{n}-s{seed}")


def random_geometric_topology(
    n: int, *, radius: float | None = None, seed: int = 7
) -> Topology:
    """A connected random geometric graph on the unit square.

    Nodes are placed uniformly at random; nodes within ``radius`` are
    linked.  The radius defaults to slightly above the connectivity
    threshold ``sqrt(ln n / (pi n))`` and is grown until the graph is
    connected, so the function always returns a valid topology.
    """
    if n < 2:
        raise TopologyError("random geometric topology needs n >= 2")
    rng = RngFactory(seed).stream("geometric")
    positions = {i: (rng.random(), rng.random()) for i in range(n)}
    r = radius if radius is not None else 1.2 * math.sqrt(math.log(n) / (math.pi * n))
    for _ in range(64):
        graph = nx.random_geometric_graph(n, r, pos=positions)
        if nx.is_connected(graph):
            plain = nx.Graph()
            plain.add_nodes_from(range(n))
            plain.add_edges_from(graph.edges)
            return Topology(plain, name=f"geo-{n}-r{r:.3f}")
        r *= 1.15
    raise TopologyError(f"could not build a connected geometric graph on {n} nodes")
