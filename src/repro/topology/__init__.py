"""Backbone network topologies.

The paper evaluates on the 1999 UUNET backbone (53 nodes spanning North
America, Europe and the Pacific Rim / Australia).  The original map is no
longer available, so :mod:`repro.topology.uunet` synthesises a
deterministic 53-node backbone with the same regional structure (see
DESIGN.md for the substitution rationale).  :mod:`repro.topology.generators`
provides additional families (line, ring, star, grid, random geometric,
balanced/random trees with capacity and QoS annotations) used by tests,
examples, ablation benchmarks and the optimality-gap harness.
"""

from repro.topology.graph import Topology
from repro.topology.regions import REGIONS, Region, region_of
from repro.topology.uunet import uunet_backbone
from repro.topology.generators import (
    balanced_tree_topology,
    grid_topology,
    line_topology,
    node_capacities,
    node_qos,
    random_geometric_topology,
    random_tree_topology,
    ring_topology,
    star_topology,
    two_cluster_topology,
)

__all__ = [
    "Topology",
    "Region",
    "REGIONS",
    "region_of",
    "uunet_backbone",
    "line_topology",
    "ring_topology",
    "star_topology",
    "grid_topology",
    "random_geometric_topology",
    "two_cluster_topology",
    "balanced_tree_topology",
    "random_tree_topology",
    "node_capacities",
    "node_qos",
]
