"""Provider-write workload: a system-wide stream of content updates.

The read side models clients ("each backbone node generates client
requests at a constant rate"); this module models the *content
providers*, who update their objects at some aggregate rate.  One
generator drives the whole system — writes are per-object events
applied at the object's primary, so there is no per-gateway structure
to preserve — and reuses the read workload's object distribution, which
makes "write-heavy" and "mixed read/write" scenarios a matter of rates:
hot objects get both the reads and the writes, the worst case for
divergence.

Every write goes through
:meth:`~repro.consistency.plane.ConsistencyPlane.provider_write`, so it
contends with the fault plane exactly like the rest of the control
traffic.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING

from repro.errors import WorkloadError
from repro.sim.engine import Simulator
from repro.workloads.base import Workload, canonical_object_ids

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.consistency.plane import ConsistencyPlane


class ProviderWriteGenerator:
    """Constant-rate provider updates over a workload's object skew."""

    __slots__ = (
        "_sim",
        "_plane",
        "_workload",
        "rate",
        "_rng",
        "_poisson",
        "_nodes",
        "_objects",
        "_event",
        "_active",
        "generated",
    )

    def __init__(
        self,
        sim: Simulator,
        plane: "ConsistencyPlane",
        workload: Workload,
        rate: float,
        rng: random.Random,
        *,
        poisson: bool = False,
    ) -> None:
        if rate <= 0:
            raise WorkloadError(f"write rate must be positive, got {rate}")
        self._sim = sim
        self._plane = plane
        self._workload = workload
        self.rate = rate
        self._rng = rng
        self._poisson = poisson
        # Gateway-conditioned workloads (regional/hot-site skews) need an
        # origin; providers publish from anywhere, so draw one per write.
        self._nodes = list(plane.system.routes.topology.nodes)
        self._objects = canonical_object_ids(workload.num_objects)
        self._active = True
        self.generated = 0
        # Random phase, like the read generators.
        first = rng.random() / rate
        self._event = sim.schedule_after(first, self._fire)

    def _fire(self) -> None:
        if not self._active:  # pragma: no cover - stop() cancels the event
            return
        delay = (
            self._rng.expovariate(self.rate) if self._poisson else 1.0 / self.rate
        )
        self._event = self._sim.schedule_after(delay, self._fire)
        origin = self._nodes[self._rng.randrange(len(self._nodes))]
        obj = self._objects[self._workload.sample(origin, self._rng)]
        self._plane.provider_write(obj)
        self.generated += 1

    def stop(self) -> None:
        """Stop generating writes.  Idempotent."""
        if self._active:
            self._active = False
            self._event.cancel()
