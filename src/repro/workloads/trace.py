"""Trace-driven workloads.

The paper's companion report ([1], "Performance of replication schemes on
the Internet") evaluates the same protocol on access traces from AT&T's
EasyWWW hosting service.  Those traces are proprietary; this module
provides the full trace machinery so any trace in the simple interchange
format can drive the simulation, plus a synthesiser that converts any
:class:`~repro.workloads.base.Workload` into a persisted trace (the
substitution documented in DESIGN.md).

Trace format: one request per line, ``time,gateway,object`` with time in
seconds (float), monotone non-decreasing.  Lines starting with ``#`` are
comments.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.errors import WorkloadError
from repro.sim.engine import Simulator
from repro.types import NodeId, ObjectId, Time

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.protocol import HostingSystem
    from repro.workloads.base import Workload


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One request in a trace."""

    time: Time
    gateway: NodeId
    obj: ObjectId


class Trace:
    """An ordered sequence of trace records with persistence."""

    def __init__(self, records: Iterable[TraceRecord]) -> None:
        self.records = list(records)
        self._validate()

    def _validate(self) -> None:
        last = float("-inf")
        for record in self.records:
            if record.time < last:
                raise WorkloadError(
                    f"trace times must be non-decreasing (saw {record.time} "
                    f"after {last})"
                )
            if record.time < 0:
                raise WorkloadError(f"negative trace time {record.time}")
            if record.gateway < 0 or record.obj < 0:
                raise WorkloadError("gateway and object ids must be non-negative")
            last = record.time

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    @property
    def duration(self) -> Time:
        """Time of the last request (0 for an empty trace)."""
        return self.records[-1].time if self.records else 0.0

    def num_objects(self) -> int:
        """1 + the largest object id referenced (0 for an empty trace)."""
        return 1 + max((r.obj for r in self.records), default=-1)

    def gateways(self) -> set[NodeId]:
        return {record.gateway for record in self.records}

    def popularity(self) -> dict[ObjectId, int]:
        """Request count per object."""
        counts: dict[ObjectId, int] = {}
        for record in self.records:
            counts[record.obj] = counts.get(record.obj, 0) + 1
        return counts

    def mean_rate(self) -> float:
        """Overall request rate in requests/sec."""
        if not self.records or self.duration == 0:
            return 0.0
        return len(self.records) / self.duration

    # -- persistence -----------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Write the interchange format (``time,gateway,object`` lines)."""
        lines = ["# repro trace v1: time,gateway,object"]
        lines.extend(
            f"{record.time:.6f},{record.gateway},{record.obj}"
            for record in self.records
        )
        Path(path).write_text("\n".join(lines) + "\n")

    @classmethod
    def load(cls, path: str | Path) -> "Trace":
        """Parse the interchange format; raises WorkloadError on bad rows."""
        records = []
        for lineno, line in enumerate(Path(path).read_text().splitlines(), 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split(",")
            if len(parts) != 3:
                raise WorkloadError(f"{path}:{lineno}: expected 3 fields")
            try:
                records.append(
                    TraceRecord(float(parts[0]), int(parts[1]), int(parts[2]))
                )
            except ValueError as exc:
                raise WorkloadError(f"{path}:{lineno}: {exc}") from exc
        return cls(records)


def synthesize_trace(
    workload: "Workload",
    *,
    rate_per_gateway: float,
    duration: Time,
    gateways: Sequence[NodeId],
    rng: random.Random,
    poisson: bool = False,
) -> Trace:
    """Materialise a synthetic workload as a trace.

    Generates the same request stream :class:`RequestGenerator` would
    produce (per-gateway constant rate with random phase, or Poisson) but
    records it instead of submitting it, so runs can be replayed exactly
    and shared.
    """
    if rate_per_gateway <= 0:
        raise WorkloadError("rate must be positive")
    if duration <= 0:
        raise WorkloadError("duration must be positive")
    records: list[TraceRecord] = []
    for gateway in gateways:
        t = rng.random() / rate_per_gateway
        while t < duration:
            records.append(TraceRecord(t, gateway, workload.sample(gateway, rng)))
            t += (
                rng.expovariate(rate_per_gateway)
                if poisson
                else 1.0 / rate_per_gateway
            )
    records.sort(key=lambda record: record.time)
    return Trace(records)


class TraceReplayer:
    """Replays a trace into a hosting system on the simulator clock."""

    def __init__(
        self,
        sim: Simulator,
        system: "HostingSystem",
        trace: Trace,
        *,
        time_scale: float = 1.0,
    ) -> None:
        if time_scale <= 0:
            raise WorkloadError("time scale must be positive")
        self._sim = sim
        self._system = system
        self._trace = trace
        self._time_scale = time_scale
        self._index = 0
        self.replayed = 0
        if trace.records:
            self._schedule_next()

    def _schedule_next(self) -> None:
        record = self._trace.records[self._index]
        self._sim.schedule_at(
            self._sim.now
            + max(0.0, record.time * self._time_scale - self._sim.now),
            self._fire,
        )

    def _fire(self) -> None:
        record = self._trace.records[self._index]
        self._system.submit_request(record.gateway, record.obj)
        self.replayed += 1
        self._index += 1
        if self._index < len(self._trace.records):
            self._schedule_next()

    @property
    def done(self) -> bool:
        return self._index >= len(self._trace.records)
