"""The hot-pages workload (Section 6.1).

"All the pages are divided into hot and cold buckets in the ratio 1:9.
A page from the hot bucket is requested with a high probability (0.9)."

Unlike hot-sites, the hot pages are *well distributed* across sites
(the paper contrasts the two by exactly this property), so we pick the
hot bucket by uniform random sample over the whole namespace — under the
round-robin initial assignment this spreads hot pages evenly over nodes.
"""

from __future__ import annotations

import random

from repro.errors import WorkloadError
from repro.types import NodeId, ObjectId
from repro.workloads.base import Workload


class HotPagesWorkload(Workload):
    """10% of pages (spread over all sites) receive 90% of requests."""

    def __init__(
        self,
        num_objects: int,
        *,
        hot_fraction: float = 0.1,
        hot_request_prob: float = 0.9,
        split_rng: random.Random,
    ) -> None:
        super().__init__(num_objects)
        if not 0.0 < hot_fraction < 1.0:
            raise WorkloadError(f"hot fraction must be in (0, 1), got {hot_fraction}")
        if not 0.0 < hot_request_prob < 1.0:
            raise WorkloadError(
                f"hot request probability must be in (0, 1), got {hot_request_prob}"
            )
        hot_count = max(1, round(num_objects * hot_fraction))
        if hot_count >= num_objects:
            raise WorkloadError("hot bucket would swallow every page")
        self.hot_fraction = hot_fraction
        self.hot_request_prob = hot_request_prob
        hot = sorted(split_rng.sample(range(num_objects), hot_count))
        hot_set = frozenset(hot)
        self._hot_pages = hot
        self._cold_pages = [obj for obj in range(num_objects) if obj not in hot_set]
        self.hot_pages = hot_set

    def sample(self, gateway: NodeId, rng: random.Random) -> ObjectId:
        if rng.random() < self.hot_request_prob:
            return rng.choice(self._hot_pages)
        return rng.choice(self._cold_pages)

    @property
    def name(self) -> str:
        return "hot-pages"
