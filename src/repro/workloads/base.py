"""Workload protocol and request generation.

A workload maps ``(gateway, rng)`` to an object id; a
:class:`RequestGenerator` submits requests for one gateway at a constant
rate ("each backbone node generates client requests at a constant rate
that enter the platform through it", Section 6.1).  Generators default to
deterministic even spacing — the paper's load-bound analysis assumes
evenly spaced requests — with a random phase per gateway so the 53
generators do not fire in lock-step; Poisson arrivals are available for
robustness experiments.
"""

from __future__ import annotations

import abc
import random
from functools import lru_cache
from typing import TYPE_CHECKING, Sequence

from repro.errors import WorkloadError
from repro.sim.engine import Simulator
from repro.sim.rng import RngFactory
from repro.types import NodeId, ObjectId

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.protocol import HostingSystem


@lru_cache(maxsize=8)
def canonical_object_ids(num_objects: int) -> tuple[ObjectId, ...]:
    """One canonical ``int`` object per object id.

    Workload samplers produce fresh ``int`` boxes on every draw; mapping
    them through this table interns them so the hot
    ``submit_request → choose_replica → host`` path hashes/compares one
    shared object per id (dict lookups short-circuit on identity) and the
    millions of :class:`~repro.types.RequestRecord` instances reference
    rather than duplicate them.  Pure value mapping — RNG draw order and
    sampled values are untouched.
    """
    return tuple(range(num_objects))


class Workload(abc.ABC):
    """A distribution over objects, possibly conditioned on the gateway."""

    def __init__(self, num_objects: int) -> None:
        if num_objects < 1:
            raise WorkloadError("a workload needs at least one object")
        self.num_objects = num_objects

    @abc.abstractmethod
    def sample(self, gateway: NodeId, rng: random.Random) -> ObjectId:
        """Draw the object requested by a client behind ``gateway``."""

    @property
    def name(self) -> str:
        return type(self).__name__.removesuffix("Workload").lower()


class UniformWorkload(Workload):
    """Every object equally likely — the no-structure control workload."""

    def sample(self, gateway: NodeId, rng: random.Random) -> ObjectId:
        return rng.randrange(self.num_objects)


class RequestGenerator:
    """Constant-rate request stream for one gateway node."""

    __slots__ = (
        "_sim",
        "_system",
        "_workload",
        "gateway",
        "rate",
        "_rng",
        "_poisson",
        "_event",
        "_active",
        "generated",
        "_objects",
    )

    def __init__(
        self,
        sim: Simulator,
        system: "HostingSystem",
        workload: Workload,
        gateway: NodeId,
        rate: float,
        rng: random.Random,
        *,
        poisson: bool = False,
    ) -> None:
        if rate <= 0:
            raise WorkloadError(f"request rate must be positive, got {rate}")
        if workload.num_objects > system.num_objects:
            raise WorkloadError(
                "workload namespace larger than the system's: "
                f"{workload.num_objects} > {system.num_objects}"
            )
        self._sim = sim
        self._system = system
        self._workload = workload
        self.gateway = gateway
        self.rate = rate
        self._rng = rng
        self._poisson = poisson
        self._active = True
        self.generated = 0
        self._objects = canonical_object_ids(workload.num_objects)
        # Random phase so generators across gateways do not fire in sync.
        first = rng.random() / rate
        self._event = sim.schedule_after(first, self._fire)

    def _fire(self) -> None:
        if not self._active:  # pragma: no cover - stop() cancels the event
            return
        delay = (
            self._rng.expovariate(self.rate) if self._poisson else 1.0 / self.rate
        )
        self._event = self._sim.schedule_after(delay, self._fire)
        obj = self._objects[self._workload.sample(self.gateway, self._rng)]
        self._system.submit_request(self.gateway, obj)
        self.generated += 1

    def stop(self) -> None:
        """Stop generating requests.  Idempotent."""
        if self._active:
            self._active = False
            self._event.cancel()


def attach_generators(
    sim: Simulator,
    system: "HostingSystem",
    workload: Workload,
    rate: float,
    rng_factory: RngFactory,
    *,
    gateways: Sequence[NodeId] | None = None,
    poisson: bool = False,
    batched: bool = False,
    window: float | None = None,
):
    """One generator per gateway (default: every backbone node).

    With ``batched`` set, arrivals are pre-drawn per ``window`` seconds as
    vectors (:class:`~repro.workloads.batched.BatchedRequestGenerator`)
    instead of one scheduler event per request — same RNG streams, same
    arrival times and objects, a fraction of the scheduling overhead.
    """
    nodes = (
        list(gateways)
        if gateways is not None
        else list(system.routes.topology.nodes)
    )
    if batched:
        from repro.workloads.batched import DEFAULT_WINDOW, BatchedRequestGenerator

        return [
            BatchedRequestGenerator(
                sim,
                system,
                workload,
                node,
                rate,
                rng_factory.stream(f"gen-{node}"),
                poisson=poisson,
                window=window if window is not None else DEFAULT_WINDOW,
            )
            for node in nodes
        ]
    return [
        RequestGenerator(
            sim,
            system,
            workload,
            node,
            rate,
            rng_factory.stream(f"gen-{node}"),
            poisson=poisson,
        )
        for node in nodes
    ]
