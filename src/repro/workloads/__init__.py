"""Synthetic workloads (Section 6.1).

Four request-pattern families drive the paper's evaluation:

* **Zipf** — object popularity follows Zipf's law (sampled with Reeds'
  closed-form approximation, as in the paper).
* **Hot-sites** — 10% of *sites* are hot; 90% of requests go to pages
  initially assigned to hot sites (popularity concentrated at few nodes).
* **Hot-pages** — 10% of *pages* (spread across all sites) are hot and
  receive 90% of requests.
* **Regional** — each of the four backbone regions prefers its own
  contiguous 1% slice of the namespace with probability 90%.

All workloads expose ``sample(gateway, rng) -> ObjectId``;
:class:`~repro.workloads.base.RequestGenerator` turns a workload into a
constant-rate request stream per gateway node.
:class:`~repro.workloads.mixture.MixtureWorkload` and
:class:`~repro.workloads.mixture.PhasedWorkload` compose workloads (for
demand-shift / responsiveness experiments).
"""

from repro.workloads.base import (
    RequestGenerator,
    UniformWorkload,
    Workload,
    attach_generators,
    canonical_object_ids,
)
from repro.workloads.batched import BatchedRequestGenerator
from repro.workloads.hot_pages import HotPagesWorkload
from repro.workloads.hot_sites import HotSitesWorkload
from repro.workloads.mixture import MixtureWorkload, PhasedWorkload
from repro.workloads.regional import RegionalWorkload
from repro.workloads.zipf import ZipfWorkload

__all__ = [
    "Workload",
    "UniformWorkload",
    "ZipfWorkload",
    "HotSitesWorkload",
    "HotPagesWorkload",
    "RegionalWorkload",
    "MixtureWorkload",
    "PhasedWorkload",
    "RequestGenerator",
    "BatchedRequestGenerator",
    "attach_generators",
    "canonical_object_ids",
]
