"""The Zipf workload (Section 6.1).

"Clients choose pages according to Zipf's law, where the page number
corresponds to its popularity rank": object 0 is the most popular.  The
paper samples with Jim Reeds' closed-form approximation (footnote 3),
``round(exp(U(0,1) * ln n))``, which tracks the true law within 15%; we
default to the same approximation and optionally offer the exact
table-driven sampler for sensitivity analysis.
"""

from __future__ import annotations

import random

from repro.errors import WorkloadError
from repro.sim.rng import zipf_exact, zipf_exact_cdf, zipf_reeds
from repro.types import NodeId, ObjectId
from repro.workloads.base import Workload


class ZipfWorkload(Workload):
    """Zipf-popularity requests, identical at every gateway."""

    def __init__(
        self,
        num_objects: int,
        *,
        exact: bool = False,
        alpha: float = 1.0,
    ) -> None:
        super().__init__(num_objects)
        if alpha <= 0:
            raise WorkloadError(f"Zipf alpha must be positive, got {alpha}")
        self.exact = exact
        self.alpha = alpha
        self._cdf = zipf_exact_cdf(num_objects, alpha) if exact else None

    def sample(self, gateway: NodeId, rng: random.Random) -> ObjectId:
        if self._cdf is not None:
            rank = zipf_exact(rng, self._cdf)
        else:
            rank = zipf_reeds(rng, self.num_objects)
        return rank - 1

    @property
    def name(self) -> str:
        return "zipf"
