"""The regional workload (Section 6.1).

"All nodes are divided into four regions: Western North America, Eastern
North America, Europe, and Pacific and Australia.  Each region is
assigned a contiguous set of object numbers totaling 1% of all objects,
representing a preferred object set for the region.  Then, with
probability 90%, each node requests a random object from the preferred
set for this node; with probability 10% a random object from the entire
set of objects is chosen."

This is the workload with genuine locality — the paper's protocol
concentrates each region's replicas inside that region and achieves its
largest bandwidth win (90.1%) here.
"""

from __future__ import annotations

import random

from repro.errors import WorkloadError
from repro.topology.graph import Topology
from repro.topology.regions import REGIONS
from repro.types import NodeId, ObjectId
from repro.workloads.base import Workload


class RegionalWorkload(Workload):
    """Each region prefers its own contiguous 1% of the namespace."""

    def __init__(
        self,
        num_objects: int,
        topology: Topology,
        *,
        preferred_fraction: float = 0.01,
        preferred_prob: float = 0.9,
    ) -> None:
        super().__init__(num_objects)
        if not topology.has_regions:
            raise WorkloadError("regional workload needs a topology with regions")
        if not 0.0 < preferred_fraction <= 1.0 / len(REGIONS):
            raise WorkloadError(
                "preferred fraction must be in (0, 1/num_regions], got "
                f"{preferred_fraction}"
            )
        if not 0.0 < preferred_prob < 1.0:
            raise WorkloadError(
                f"preferred probability must be in (0, 1), got {preferred_prob}"
            )
        slice_size = max(1, round(num_objects * preferred_fraction))
        if slice_size * len(REGIONS) > num_objects:
            raise WorkloadError(
                f"{num_objects} objects cannot fit {len(REGIONS)} regional "
                f"slices of {slice_size}"
            )
        self.preferred_prob = preferred_prob
        #: Contiguous preferred object range per region, in REGIONS order.
        self.preferred_ranges: dict = {
            region: range(index * slice_size, (index + 1) * slice_size)
            for index, region in enumerate(REGIONS)
        }
        self._node_range: dict[NodeId, range] = {
            node: self.preferred_ranges[topology.region(node)]
            for node in topology.nodes
        }

    def sample(self, gateway: NodeId, rng: random.Random) -> ObjectId:
        if rng.random() < self.preferred_prob:
            preferred = self._node_range[gateway]
            return preferred[rng.randrange(len(preferred))]
        return rng.randrange(self.num_objects)

    @property
    def name(self) -> str:
        return "regional"
