"""Batched request generation: arrivals pre-drawn per window as vectors.

:class:`~repro.workloads.base.RequestGenerator` schedules one event per
request *and* re-enters the scheduler from inside each firing, so every
arrival costs an Event allocation plus a scheduling round-trip.  At
500-host scale (hundreds of thousands of arrivals per simulated minute)
that per-arrival overhead dominates the run.

:class:`BatchedRequestGenerator` instead pre-draws a whole window of
arrival times and sampled objects as plain vectors and hands them to
:meth:`repro.sim.engine.Simulator.post_batch` in one call — one refill
event per window instead of one generator event per request, and no
Event handles at all for the arrivals themselves.

Equivalence with the per-event generator
----------------------------------------
Each generator owns a dedicated RNG stream (``gen-<node>``), and the
pre-draw loop consumes that stream in exactly the per-event order (the
inter-arrival draw for the *next* arrival, then the object draw for the
*current* one, matching ``RequestGenerator._fire``).  Arrival times and
sampled objects are therefore bit-identical to the per-event generator's.
What can differ is the global event *sequence* interleaving: batched
arrivals get their sequence numbers at refill time rather than one
arrival at a time, so a tie between two events at the *exact same float
timestamp* from different sources could resolve differently.  Arrival
times carry a random per-gateway phase, making such ties measure-zero in
practice — the equivalence test in ``tests/workloads/test_batched.py``
asserts metric-identical runs — but canonical spec-hashed baselines keep
the per-event generator (``batched_arrivals`` defaults off) so their
snapshots remain byte-identical by construction rather than by argument.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING

from repro.errors import WorkloadError
from repro.sim.engine import Simulator
from repro.types import NodeId, Time
from repro.workloads.base import Workload, canonical_object_ids

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.protocol import HostingSystem

#: Default pre-draw window, seconds.  Scenario runners override this with
#: the protocol's measurement interval so one refill per interval feeds
#: the queue's far buckets directly.
DEFAULT_WINDOW = 10.0


class BatchedRequestGenerator:
    """Constant-rate request stream, pre-drawn one window at a time."""

    __slots__ = (
        "_sim",
        "_system",
        "_workload",
        "gateway",
        "rate",
        "_rng",
        "_poisson",
        "_window",
        "_next_time",
        "_refill_event",
        "_active",
        "generated",
        "_objects",
    )

    def __init__(
        self,
        sim: Simulator,
        system: "HostingSystem",
        workload: Workload,
        gateway: NodeId,
        rate: float,
        rng: random.Random,
        *,
        poisson: bool = False,
        window: Time = DEFAULT_WINDOW,
    ) -> None:
        if rate <= 0:
            raise WorkloadError(f"request rate must be positive, got {rate}")
        if window <= 0:
            raise WorkloadError(f"pre-draw window must be positive, got {window}")
        if workload.num_objects > system.num_objects:
            raise WorkloadError(
                "workload namespace larger than the system's: "
                f"{workload.num_objects} > {system.num_objects}"
            )
        self._sim = sim
        self._system = system
        self._workload = workload
        self.gateway = gateway
        self.rate = rate
        self._rng = rng
        self._poisson = poisson
        self._window = window
        self._active = True
        #: Arrivals *scheduled* (the per-event generator counts arrivals
        #: fired; after a completed run the two agree — see module doc).
        self.generated = 0
        self._objects = canonical_object_ids(workload.num_objects)
        # Random phase, same first draw as RequestGenerator.
        first = rng.random() / rate
        self._next_time = sim.now + first
        self._refill_event = None
        self._fill()

    def _fill(self) -> None:
        """Pre-draw and schedule every arrival in the next window."""
        sim = self._sim
        end = sim.now + self._window
        t = self._next_time
        times: list[Time] = []
        pairs: list[tuple] = []
        append_time = times.append
        append_pair = pairs.append
        rng = self._rng
        expovariate = rng.expovariate
        rate = self.rate
        step = 1.0 / rate
        poisson = self._poisson
        sample = self._workload.sample
        gateway = self.gateway
        objects = self._objects
        while t < end:
            # Same per-arrival draw order as RequestGenerator._fire: the
            # next inter-arrival gap first, then this arrival's object.
            nxt = t + (expovariate(rate) if poisson else step)
            append_time(t)
            append_pair((gateway, objects[sample(gateway, rng)]))
            t = nxt
        self._next_time = t
        if times:
            sim.post_batch(times, self._system.submit_request, pairs)
            self.generated += len(times)
        self._refill_event = sim.schedule_after(self._window, self._fill)

    def stop(self) -> None:
        """Stop pre-drawing new windows.  Idempotent.

        Arrivals already scheduled (up to one window ahead) cannot be
        recalled — they fire if the simulation keeps running.  Scenario
        runners stop generators only after the measurement horizon, where
        the distinction is unobservable.
        """
        if self._active:
            self._active = False
            if self._refill_event is not None:
                self._refill_event.cancel()
