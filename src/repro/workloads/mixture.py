"""Composite workloads: mixtures and time-phased demand shifts.

The paper notes "one can expect that a real-life workload would be some
mix of workloads similar to the ones considered" and measures the
protocol's *responsiveness to changes in demand patterns* — the
adjustment time from the initial assignment is one such change.
:class:`PhasedWorkload` generalises this: the active workload switches at
configured simulated times, letting experiments measure re-adjustment
after an established equilibrium (used by the flash-crowd example and the
responsiveness benchmarks).
"""

from __future__ import annotations

import random
from typing import Callable, Sequence

from repro.errors import WorkloadError
from repro.types import NodeId, ObjectId, Time
from repro.workloads.base import Workload


class MixtureWorkload(Workload):
    """A convex combination of workloads over the same namespace."""

    def __init__(
        self, components: Sequence[tuple[float, Workload]]
    ) -> None:
        if not components:
            raise WorkloadError("a mixture needs at least one component")
        sizes = {workload.num_objects for _, workload in components}
        if len(sizes) != 1:
            raise WorkloadError(
                f"mixture components disagree on namespace size: {sorted(sizes)}"
            )
        total = sum(weight for weight, _ in components)
        if total <= 0 or any(weight < 0 for weight, _ in components):
            raise WorkloadError("mixture weights must be non-negative, sum > 0")
        super().__init__(next(iter(sizes)))
        self._cumulative: list[tuple[float, Workload]] = []
        acc = 0.0
        for weight, workload in components:
            acc += weight / total
            self._cumulative.append((acc, workload))

    def sample(self, gateway: NodeId, rng: random.Random) -> ObjectId:
        point = rng.random()
        for threshold, workload in self._cumulative:
            if point <= threshold:
                return workload.sample(gateway, rng)
        return self._cumulative[-1][1].sample(gateway, rng)

    @property
    def name(self) -> str:
        return "mixture(" + ",".join(w.name for _, w in self._cumulative) + ")"


class PhasedWorkload(Workload):
    """Switches between workloads at fixed simulated times.

    ``phases`` is a list of ``(start_time, workload)`` with strictly
    increasing start times; the first phase must start at 0.  The active
    phase is selected by a clock callable (normally ``sim.now``) supplied
    at construction, keeping the workload object free of simulator
    dependencies.
    """

    def __init__(
        self,
        phases: Sequence[tuple[Time, Workload]],
        clock: Callable[[], Time],
    ) -> None:
        if not phases:
            raise WorkloadError("a phased workload needs at least one phase")
        starts = [start for start, _ in phases]
        if starts[0] != 0:
            raise WorkloadError("the first phase must start at time 0")
        if any(b <= a for a, b in zip(starts, starts[1:])):
            raise WorkloadError("phase start times must strictly increase")
        sizes = {workload.num_objects for _, workload in phases}
        if len(sizes) != 1:
            raise WorkloadError(
                f"phase workloads disagree on namespace size: {sorted(sizes)}"
            )
        super().__init__(next(iter(sizes)))
        self._phases = list(phases)
        self._clock = clock

    def active_workload(self) -> Workload:
        """The workload of the current phase."""
        now = self._clock()
        current = self._phases[0][1]
        for start, workload in self._phases:
            if start <= now:
                current = workload
            else:
                break
        return current

    def sample(self, gateway: NodeId, rng: random.Random) -> ObjectId:
        return self.active_workload().sample(gateway, rng)

    @property
    def name(self) -> str:
        return "phased(" + ",".join(w.name for _, w in self._phases) + ")"
