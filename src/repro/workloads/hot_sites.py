"""The hot-sites workload (Section 6.1).

"All sites are divided randomly into hot and cold, with p fraction of
sites going to the cold bucket and the rest to the hot bucket.  A client
chooses a random page among those initially assigned to hot sites, with
probability p, and a random document from a cold site, with probability
1 - p.  We choose p = 0.9."

This models entire Web sites varying in popularity: 10% of nodes are hot
and the pages initially placed there soak up 90% of requests.  The split
depends on the paper's round-robin initial assignment (object ``i`` on
node ``i mod num_nodes``).
"""

from __future__ import annotations

import random

from repro.errors import WorkloadError
from repro.types import NodeId, ObjectId
from repro.workloads.base import Workload


class HotSitesWorkload(Workload):
    """90% of requests target pages initially hosted at 10% of sites."""

    def __init__(
        self,
        num_objects: int,
        num_nodes: int,
        *,
        cold_fraction: float = 0.9,
        split_rng: random.Random,
    ) -> None:
        super().__init__(num_objects)
        if num_nodes < 2:
            raise WorkloadError("hot-sites needs at least two nodes")
        if not 0.0 < cold_fraction < 1.0:
            raise WorkloadError(
                f"cold fraction must be in (0, 1), got {cold_fraction}"
            )
        self.num_nodes = num_nodes
        #: p of the paper: fraction of sites that are cold AND the
        #: probability with which a hot page is requested.
        self.cold_fraction = cold_fraction
        hot_count = max(1, round(num_nodes * (1.0 - cold_fraction)))
        nodes = list(range(num_nodes))
        split_rng.shuffle(nodes)
        self.hot_sites = frozenset(nodes[:hot_count])
        # Pages initially assigned (round-robin) to hot vs cold sites.
        hot_pages = [
            obj for obj in range(num_objects) if obj % num_nodes in self.hot_sites
        ]
        cold_pages = [
            obj for obj in range(num_objects) if obj % num_nodes not in self.hot_sites
        ]
        if not hot_pages or not cold_pages:
            raise WorkloadError(
                "degenerate hot/cold page split; increase num_objects"
            )
        self._hot_pages = hot_pages
        self._cold_pages = cold_pages

    def sample(self, gateway: NodeId, rng: random.Random) -> ObjectId:
        if rng.random() < self.cold_fraction:
            return rng.choice(self._hot_pages)
        return rng.choice(self._cold_pages)

    @property
    def name(self) -> str:
        return "hot-sites"
