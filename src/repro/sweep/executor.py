"""Process-pool sweep executor.

``run_sweep`` fans a :class:`~repro.sweep.spec.SweepSpec` out across
worker processes.  Each run is executed in its own process (started
from a pool of at most ``workers`` live at a time), which buys three
things a thread pool cannot give a pure-Python simulator: parallelism
across cores, a per-run timeout that actually kills a wedged run, and
crash isolation — a worker that dies (OOM killer, segfaulting C
extension, ``os._exit``) costs one bounded retry, not the sweep.

``workers=1`` degrades gracefully to a plain in-process loop calling
the run function directly — no subprocess, no pickling — so its results
are bit-identical to calling
:func:`~repro.scenarios.runner.run_scenario_metrics` by hand in a
``for`` loop, and per-run timeouts/retries do not apply (nothing can
crash or be killed short of the interpreter itself).

Determinism: a run's outcome depends only on its
:class:`~repro.scenarios.config.ScenarioConfig` (every stochastic
component draws from seed-derived streams), so serial and parallel
execution produce identical per-run metrics; only wall-clock differs.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Mapping

from repro.analysis.stats import MetricSummary, summarize
from repro.errors import ConfigurationError
from repro.scenarios.runner import run_scenario_metrics
from repro.sweep.manifest import (
    RunRecord,
    aggregate,
    summary_dict,
    write_manifest,
)
from repro.sweep.spec import RunSpec, SweepSpec

#: A run function: executes one run, returns its scalar metrics.
RunFn = Callable[[RunSpec], Mapping[str, float]]

#: Default per-run timeout (seconds) in worker-pool mode; None = no limit.
DEFAULT_TIMEOUT: float | None = None


def default_workers() -> int:
    """Worker count benchmarks and the CLI default to.

    ``REPRO_SWEEP_WORKERS`` overrides; otherwise the CPU count capped at
    8 (past that, pure-Python runs contend for memory bandwidth more
    than they gain).
    """
    override = os.environ.get("REPRO_SWEEP_WORKERS")
    if override is not None:
        try:
            value = int(override)
        except ValueError as exc:
            raise ConfigurationError(
                f"bad REPRO_SWEEP_WORKERS {override!r}"
            ) from exc
        if value < 1:
            raise ConfigurationError(
                f"REPRO_SWEEP_WORKERS must be >= 1, got {value}"
            )
        return value
    return min(os.cpu_count() or 1, 8)


def _execute_run(run: RunSpec) -> Mapping[str, float]:
    """The default run function: one full scenario, metrics only."""
    return run_scenario_metrics(run.config)


def _child_main(conn, run_fn: RunFn, run: RunSpec) -> None:
    """Worker-process body: run, report through the pipe, exit."""
    try:
        metrics = run_fn(run)
        conn.send(("ok", dict(metrics)))
    except BaseException as exc:  # noqa: BLE001 - ship any failure to the parent
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except Exception:
            pass  # pipe gone; the parent will see a crash
    finally:
        conn.close()


@dataclass(frozen=True, slots=True)
class SweepResult:
    """Everything a finished sweep produced."""

    spec_hash: str
    records: tuple[RunRecord, ...]
    wall_time_s: float
    workers: int

    @property
    def ok_records(self) -> tuple[RunRecord, ...]:
        return tuple(r for r in self.records if r.ok)

    @property
    def failures(self) -> tuple[RunRecord, ...]:
        return tuple(r for r in self.records if not r.ok)

    def metric(self, name: str, *, point: str | None = None) -> MetricSummary:
        """Summarise one metric across ``ok`` runs (optionally one point)."""
        values = [
            r.metrics[name]
            for r in self.ok_records
            if (point is None or r.point == point) and name in (r.metrics or {})
        ]
        if not values:
            raise ConfigurationError(
                f"no successful run recorded metric {name!r}"
                + (f" at point {point!r}" if point else "")
            )
        return summarize(values)

    def aggregate(self) -> dict[str, dict[str, MetricSummary]]:
        """Per-point, per-metric summaries (see :func:`manifest.aggregate`)."""
        return aggregate(self.records)

    def total(self, name: str) -> float:
        """Sum of one metric over the ``ok`` runs (0.0 if never recorded)."""
        return sum(r.metrics.get(name, 0.0) for r in self.ok_records)

    def throughput(self) -> float:
        """Serviced requests per wall-clock second, across the whole sweep.

        The benchmark-gate headline: it reflects both simulator speed
        and executor parallelism, and is the quantity the CI smoke job
        compares against the committed baseline.
        """
        if self.wall_time_s <= 0:
            return 0.0
        return self.total("requests_completed") / self.wall_time_s

    def summary(self) -> dict:
        """JSON-ready sweep summary (the ``bench_smoke.json`` schema)."""
        statuses: dict[str, int] = {}
        for record in self.records:
            statuses[record.status] = statuses.get(record.status, 0) + 1
        return {
            "spec_hash": self.spec_hash,
            "runs": len(self.records),
            "statuses": statuses,
            "workers": self.workers,
            "wall_time_s": self.wall_time_s,
            "requests_completed": self.total("requests_completed"),
            "throughput_rps": self.throughput(),
            "points": summary_dict(self.aggregate()),
        }


@dataclass(slots=True)
class _Slot:
    """One live worker process."""

    run: RunSpec
    attempt: int
    proc: multiprocessing.Process
    conn: object
    started: float = field(default_factory=time.monotonic)


def _record(
    spec_hash: str,
    run: RunSpec,
    status: str,
    attempts: int,
    duration: float,
    metrics: Mapping[str, float] | None = None,
    error: str | None = None,
) -> RunRecord:
    return RunRecord(
        spec_hash=spec_hash,
        index=run.index,
        point=run.point,
        seed=run.seed,
        overrides=dict(run.overrides),
        scenario=run.config.name,
        status=status,
        attempts=attempts,
        duration_s=duration,
        metrics=dict(metrics) if metrics is not None else None,
        error=error,
    )


def _run_serial(
    spec_hash: str, runs: tuple[RunSpec, ...], run_fn: RunFn
) -> list[RunRecord]:
    records: list[RunRecord] = []
    for run in runs:
        started = time.monotonic()
        try:
            metrics = run_fn(run)
        except Exception as exc:  # noqa: BLE001 - a failed run is a record
            records.append(
                _record(
                    spec_hash,
                    run,
                    "error",
                    1,
                    time.monotonic() - started,
                    error=f"{type(exc).__name__}: {exc}",
                )
            )
        else:
            records.append(
                _record(
                    spec_hash, run, "ok", 1, time.monotonic() - started, metrics
                )
            )
    return records


def _mp_context():
    """Prefer fork (cheap, inherits loaded modules); fall back to spawn."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def _run_pool(
    spec_hash: str,
    runs: tuple[RunSpec, ...],
    run_fn: RunFn,
    workers: int,
    timeout: float | None,
    retries: int,
) -> list[RunRecord]:
    ctx = _mp_context()
    pending: deque[tuple[RunSpec, int]] = deque((run, 1) for run in runs)
    active: list[_Slot] = []
    done: dict[int, RunRecord] = {}

    def finish(slot: _Slot, record: RunRecord) -> None:
        done[record.index] = record
        slot.conn.close()

    while pending or active:
        while pending and len(active) < workers:
            run, attempt = pending.popleft()
            parent_conn, child_conn = ctx.Pipe(duplex=False)
            proc = ctx.Process(
                target=_child_main, args=(child_conn, run_fn, run), daemon=True
            )
            proc.start()
            child_conn.close()
            active.append(_Slot(run=run, attempt=attempt, proc=proc, conn=parent_conn))

        def crashed(slot: _Slot, elapsed: float) -> None:
            """Worker died without reporting: retry or record the crash."""
            if slot.attempt <= retries:
                pending.append((slot.run, slot.attempt + 1))
                slot.conn.close()
            else:
                finish(
                    slot,
                    _record(
                        spec_hash,
                        slot.run,
                        "crashed",
                        slot.attempt,
                        elapsed,
                        error=(
                            "worker died without reporting "
                            f"(exit code {slot.proc.exitcode}) after "
                            f"{slot.attempt} attempt(s)"
                        ),
                    ),
                )

        progressed = False
        for slot in list(active):
            elapsed = time.monotonic() - slot.started
            if slot.conn.poll(0):
                # poll() also trips on EOF: a worker that died closes
                # the pipe without writing, and recv() raises.
                try:
                    status, payload = slot.conn.recv()
                except EOFError:
                    slot.proc.join()
                    active.remove(slot)
                    progressed = True
                    crashed(slot, elapsed)
                    continue
                slot.proc.join()
                active.remove(slot)
                progressed = True
                if status == "ok":
                    finish(
                        slot,
                        _record(
                            spec_hash, slot.run, "ok", slot.attempt, elapsed, payload
                        ),
                    )
                else:
                    finish(
                        slot,
                        _record(
                            spec_hash,
                            slot.run,
                            "error",
                            slot.attempt,
                            elapsed,
                            error=payload,
                        ),
                    )
            elif timeout is not None and elapsed > timeout:
                slot.proc.terminate()
                slot.proc.join()
                active.remove(slot)
                progressed = True
                finish(
                    slot,
                    _record(
                        spec_hash,
                        slot.run,
                        "timeout",
                        slot.attempt,
                        elapsed,
                        error=f"run exceeded {timeout:g}s and was killed",
                    ),
                )
            elif not slot.proc.is_alive():
                slot.proc.join()
                active.remove(slot)
                progressed = True
                crashed(slot, elapsed)
        if not progressed:
            time.sleep(0.005)
    return [done[index] for index in sorted(done)]


def run_sweep(
    spec: SweepSpec,
    *,
    workers: int = 1,
    timeout: float | None = DEFAULT_TIMEOUT,
    retries: int = 1,
    run_fn: RunFn = _execute_run,
    manifest_path: str | Path | None = None,
) -> SweepResult:
    """Execute every run of ``spec`` and collect the records.

    ``workers=1`` runs in-process and serially (bit-identical to a
    hand-rolled ``run_scenario`` loop); ``workers>1`` uses a process
    pool with a per-run ``timeout`` (seconds; ``None`` disables) and up
    to ``retries`` re-executions of a run whose worker crashed.  When
    ``manifest_path`` is given the JSONL run manifest is written there
    (parents created) after the sweep completes, ordered by run index.
    """
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    if retries < 0:
        raise ConfigurationError(f"retries must be >= 0, got {retries}")
    if timeout is not None and timeout <= 0:
        raise ConfigurationError(f"timeout must be positive, got {timeout}")
    runs = spec.runs()
    spec_hash = spec.spec_hash()
    started = time.monotonic()
    if workers == 1:
        records = _run_serial(spec_hash, runs, run_fn)
    else:
        records = _run_pool(
            spec_hash, runs, run_fn, min(workers, len(runs)), timeout, retries
        )
    result = SweepResult(
        spec_hash=spec_hash,
        records=tuple(records),
        wall_time_s=time.monotonic() - started,
        workers=workers,
    )
    if manifest_path is not None:
        write_manifest(result.records, manifest_path)
    return result
