"""The fixed benchmark-smoke sweep behind the CI regression gate.

One canonical, cheap, fully-deterministic sweep — 2 seeds x 2 placement
intervals on the Zipf workload at load scale 0.05 — defined in exactly
one place so the committed baseline (``benchmarks/reports/baseline.json``),
the CI ``bench-smoke`` job and any local re-run all execute the same
spec (and therefore agree on ``spec_hash``).  The gate compares the
sweep's wall-clock throughput against the baseline with a tolerance;
see ``benchmarks/compare_baseline.py``.
"""

from __future__ import annotations

from repro.scenarios.presets import paper_scenario
from repro.sweep.spec import SweepSpec

#: Load-axis scale of the smoke runs (cheap but dynamics-preserving).
SMOKE_SCALE = 0.05
#: Simulated seconds per smoke run (4 metric buckets at the 60 s width).
SMOKE_DURATION = 240.0
#: Seeds the smoke sweep runs (explicit, not derived: the baseline's
#: deterministic metrics must never shift under a root-seed change).
SMOKE_SEEDS = (1, 2)
#: Placement-interval axis (seconds) — exercises the override machinery.
SMOKE_INTERVALS = (50.0, 100.0)


def smoke_spec() -> SweepSpec:
    """The canonical smoke sweep: 4 runs, ~tens of seconds of wall clock."""
    base = paper_scenario(
        "zipf", scale=SMOKE_SCALE, duration=SMOKE_DURATION, seed=SMOKE_SEEDS[0]
    )
    return SweepSpec.grid(
        base,
        {"protocol.placement_interval": SMOKE_INTERVALS},
        seeds=SMOKE_SEEDS,
        name="bench-smoke",
    )
