"""Sweep run records: the JSONL manifest and cross-run aggregation.

Every run of a sweep — including failed ones — produces one
:class:`RunRecord`.  The manifest is one JSON object per line with a
flat, self-describing schema::

    {"spec_hash": "1f0c...", "index": 0, "point": "base", "seed": 1,
     "overrides": {}, "scenario": "paper-low-load-zipf-x0.15",
     "status": "ok", "attempts": 1, "duration_s": 3.21,
     "metrics": {"bandwidth_reduction": 0.51, ...}, "error": null}

``status`` is one of ``ok`` (metrics present), ``error`` (the scenario
raised), ``crashed`` (the worker process died without reporting, after
exhausting its retry budget) or ``timeout`` (the run exceeded the
per-run limit and was killed).  Aggregation groups ``ok`` records by
parameter point and summarises each metric with the Student-t 95%
machinery of :mod:`repro.analysis.stats`.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Iterable, Mapping

from repro.analysis.stats import MetricSummary, summarize
from repro.errors import ConfigurationError

#: Legal ``RunRecord.status`` values.
RUN_STATUSES = ("ok", "error", "crashed", "timeout")


@dataclass(frozen=True, slots=True)
class RunRecord:
    """Outcome of one sweep run (one manifest line)."""

    spec_hash: str
    index: int
    point: str
    seed: int
    overrides: dict[str, object]
    scenario: str
    status: str
    attempts: int
    duration_s: float
    metrics: dict[str, float] | None = None
    error: str | None = None

    def __post_init__(self) -> None:
        if self.status not in RUN_STATUSES:
            raise ConfigurationError(
                f"unknown run status {self.status!r}; expected one of {RUN_STATUSES}"
            )

    @property
    def ok(self) -> bool:
        return self.status == "ok"


def write_manifest(records: Iterable[RunRecord], path: str | Path) -> int:
    """Write records as JSONL (parents created); returns the line count."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    count = 0
    with path.open("w") as handle:
        for record in records:
            handle.write(json.dumps(asdict(record), sort_keys=True))
            handle.write("\n")
            count += 1
    return count


def read_manifest(path: str | Path) -> list[RunRecord]:
    """Read a manifest back as :class:`RunRecord` objects, in file order."""
    out: list[RunRecord] = []
    with Path(path).open() as handle:
        for line in handle:
            line = line.strip()
            if line:
                out.append(RunRecord(**json.loads(line)))
    return out


def aggregate(
    records: Iterable[RunRecord],
) -> dict[str, dict[str, MetricSummary]]:
    """Per-point, per-metric summaries across the ``ok`` records.

    Returns ``{point_label: {metric_name: MetricSummary}}``; only
    metrics present in every ``ok`` record of a point are summarised
    (a short run may legitimately omit series-derived metrics, and a
    mean over a subset would be misleading).
    """
    by_point: dict[str, list[RunRecord]] = {}
    for record in records:
        if record.ok:
            by_point.setdefault(record.point, []).append(record)
    out: dict[str, dict[str, MetricSummary]] = {}
    for point, group in by_point.items():
        names = set(group[0].metrics or ())
        for record in group[1:]:
            names &= set(record.metrics or ())
        out[point] = {
            name: summarize([record.metrics[name] for record in group])
            for name in sorted(names)
        }
    return out


def summary_dict(summaries: Mapping[str, Mapping[str, MetricSummary]]) -> dict:
    """JSON-ready form of :func:`aggregate` output (for ``--json`` export)."""
    return {
        point: {
            name: {
                "mean": s.mean,
                "stdev": s.stdev,
                "ci95": s.ci95,
                "n": len(s.values),
            }
            for name, s in metrics.items()
        }
        for point, metrics in summaries.items()
    }
