"""Sweep specification: a scenario grid, expanded deterministically.

A :class:`SweepSpec` names everything a multi-run experiment needs — a
base :class:`~repro.scenarios.config.ScenarioConfig`, a seed list (or a
count derived from a root seed via :func:`repro.sim.rng.derive_seed`),
and a set of parameter *points*, each a dict of dotted-key overrides
(``{"protocol.placement_interval": 50.0}``).  ``runs()`` expands the
spec into a flat, stably-ordered tuple of :class:`RunSpec`, one per
point x seed; the expansion is pure, so every process of a worker pool
agrees on run indices, seeds and configs without any coordination.

``SweepSpec.grid`` is the convenience constructor for full cartesian
grids (axis values are combined point-major, keys in sorted order).
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import json
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from repro.consistency.config import ConsistencyConfig
from repro.errors import ConfigurationError
from repro.scenarios.config import ScenarioConfig
from repro.sim.rng import derive_seed

#: Override value types a spec may carry (JSON-representable scalars).
Scalar = bool | int | float | str | None

Overrides = Mapping[str, Scalar]


def apply_overrides(config: ScenarioConfig, overrides: Overrides) -> ScenarioConfig:
    """Apply dotted-key overrides to a scenario config, revalidated.

    Top-level keys name :class:`ScenarioConfig` fields; a ``head.tail``
    key descends into a nested dataclass field (``protocol.*`` in
    practice) and rebuilds it via its ``replace``.  Unknown keys raise
    :class:`ConfigurationError` rather than silently creating attributes.
    """
    flat: dict[str, Any] = {}
    nested: dict[str, dict[str, Any]] = {}
    config_fields = {f.name for f in dataclasses.fields(config)}
    for key, value in overrides.items():
        head, dot, tail = key.partition(".")
        if head not in config_fields:
            raise ConfigurationError(f"unknown override key {key!r}")
        if not dot:
            flat[head] = value
            continue
        inner = getattr(config, head)
        if not dataclasses.is_dataclass(inner):
            raise ConfigurationError(
                f"override key {key!r} descends into non-dataclass field {head!r}"
            )
        if tail not in {f.name for f in dataclasses.fields(inner)}:
            raise ConfigurationError(f"unknown override key {key!r}")
        nested.setdefault(head, {})[tail] = value
    for head, changes in nested.items():
        flat[head] = getattr(config, head).replace(**changes)
    return config.replace(**flat) if flat else config


def point_label(overrides: Overrides) -> str:
    """Human-readable label for one parameter point (``"base"`` if empty).

    Uses the leaf of each dotted key; sorted for stability.
    """
    if not overrides:
        return "base"
    return ",".join(
        f"{key.rpartition('.')[2]}={overrides[key]}" for key in sorted(overrides)
    )


@dataclass(frozen=True, slots=True)
class RunSpec:
    """One fully-resolved run of a sweep."""

    #: Position in the sweep's expansion order (manifest sort key).
    index: int
    #: The scenario seed this run uses (already applied to ``config``).
    seed: int
    #: The parameter overrides of this run's point (already applied).
    overrides: tuple[tuple[str, Scalar], ...]
    #: The exact config :func:`~repro.scenarios.runner.run_scenario` gets.
    config: ScenarioConfig

    @property
    def label(self) -> str:
        """``<point>/seed=<seed>`` — unique within a sweep."""
        return f"{self.point}/seed={self.seed}"

    @property
    def point(self) -> str:
        return point_label(dict(self.overrides))


@dataclass(slots=True)
class SweepSpec:
    """A scenario x seed x parameter-override grid, not yet run."""

    base: ScenarioConfig
    #: Explicit seeds.  Empty with ``num_seeds == 0`` means "the base
    #: config's own seed" (a plain single-seed sweep).
    seeds: tuple[int, ...] = ()
    #: When ``seeds`` is empty, derive this many seeds from ``root_seed``.
    num_seeds: int = 0
    root_seed: int = 0
    #: Parameter points; each is one dict of dotted-key overrides.  The
    #: default single empty point runs the base config unmodified.
    points: tuple[dict[str, Scalar], ...] = field(default_factory=lambda: ({},))
    name: str = "sweep"

    def __post_init__(self) -> None:
        self.seeds = tuple(int(s) for s in self.seeds)
        self.points = tuple(dict(p) for p in self.points)
        if self.num_seeds < 0:
            raise ConfigurationError(f"num_seeds must be >= 0, got {self.num_seeds}")
        if self.seeds and self.num_seeds:
            raise ConfigurationError("give either explicit seeds or num_seeds, not both")

    @classmethod
    def grid(
        cls,
        base: ScenarioConfig,
        axes: Mapping[str, Sequence[Scalar]],
        **kwargs: Any,
    ) -> "SweepSpec":
        """Cartesian product over ``axes`` (dotted key -> values).

        Keys are sorted for a stable expansion order; an axis with no
        values yields an empty sweep (zero points, zero runs).
        """
        keys = sorted(axes)
        combos = itertools.product(*(axes[key] for key in keys))
        points = tuple(dict(zip(keys, combo)) for combo in combos)
        if any(not axes[key] for key in keys):
            points = ()
        return cls(base=base, points=points, **kwargs)

    def resolved_seeds(self) -> tuple[int, ...]:
        """The seed list this sweep actually runs, in order."""
        if self.seeds:
            return self.seeds
        if self.num_seeds:
            return tuple(derive_seed(self.root_seed, i) for i in range(self.num_seeds))
        return (self.base.seed,)

    def runs(self) -> tuple[RunSpec, ...]:
        """Expand to the full run list, point-major then seed order."""
        out: list[RunSpec] = []
        for overrides in self.points:
            config = apply_overrides(self.base, overrides)
            for seed in self.resolved_seeds():
                out.append(
                    RunSpec(
                        index=len(out),
                        seed=seed,
                        overrides=tuple(sorted(overrides.items())),
                        config=config.replace(seed=seed),
                    )
                )
        return tuple(out)

    def spec_hash(self) -> str:
        """Short content hash identifying the sweep (manifest/baseline key).

        Canonical-JSON over the base config, resolved seeds and points;
        any change to what would run changes the hash.  Pure verification
        toggles (``check_invariants``) and scheduling-substrate knobs
        (``batched_arrivals``, ``queue_bucket_width``, ``fast_lane`` —
        how the same event set is generated and ordered internally, not
        what it simulates) are excluded: they assert about or accelerate a run
        without changing its results, and including them would invalidate
        committed baselines whose runs are identical.  Similarly, a
        consistency block at its all-off defaults and an empty partition
        schedule describe exactly the runs that existed before those
        fields did, so both are dropped at their defaults to keep
        pre-existing hashes (and their baselines) valid.  The ``strategy``
        field is likewise dropped at its "paper" default (the value that
        describes every pre-registry run) but hashed when set.
        """
        base = dataclasses.asdict(self.base)
        base.pop("check_invariants", None)
        base.pop("batched_arrivals", None)
        base.pop("queue_bucket_width", None)
        base.pop("fast_lane", None)
        if base.get("strategy") == "paper":
            base.pop("strategy", None)
        if base.get("consistency") == dataclasses.asdict(ConsistencyConfig()):
            base.pop("consistency", None)
        faults = base.get("faults")
        if faults is not None and not faults.get("partitions"):
            faults.pop("partitions", None)
        payload = {
            "name": self.name,
            "base": base,
            "seeds": list(self.resolved_seeds()),
            "points": [dict(sorted(p.items())) for p in self.points],
        }
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()[:16]
