"""Parallel multi-seed / parameter-grid sweep engine.

The substrate for every multi-run experiment in the repository: a
declarative :class:`SweepSpec` (scenario x seeds x dotted-key parameter
overrides), a process-pool executor with per-run timeouts and bounded
crash retries (:func:`run_sweep`), and a result layer that writes a
JSONL run manifest and aggregates per-metric mean / stddev / 95% CI
via :mod:`repro.analysis.stats`.

>>> from repro.scenarios.presets import paper_scenario   # doctest: +SKIP
>>> from repro.sweep import SweepSpec, run_sweep         # doctest: +SKIP
>>> spec = SweepSpec.grid(                               # doctest: +SKIP
...     paper_scenario("zipf", scale=0.1, duration=600),
...     {"protocol.placement_interval": [50.0, 100.0]},
...     num_seeds=4, root_seed=7,
... )
>>> result = run_sweep(spec, workers=4)                  # doctest: +SKIP
>>> result.metric("bandwidth_reduction").mean            # doctest: +SKIP
"""

from repro.sweep.executor import (
    SweepResult,
    default_workers,
    run_sweep,
)
from repro.sweep.manifest import (
    RUN_STATUSES,
    RunRecord,
    aggregate,
    read_manifest,
    summary_dict,
    write_manifest,
)
from repro.sweep.smoke import smoke_spec
from repro.sweep.spec import (
    RunSpec,
    SweepSpec,
    apply_overrides,
    point_label,
)

__all__ = [
    "RUN_STATUSES",
    "RunRecord",
    "RunSpec",
    "SweepResult",
    "SweepSpec",
    "aggregate",
    "apply_overrides",
    "default_workers",
    "point_label",
    "read_manifest",
    "run_sweep",
    "smoke_spec",
    "summary_dict",
    "write_manifest",
]
