"""Exact bottom-up DP for replica placement on trees (Closest policy).

The solver processes nodes in reverse breadth-first order (children
before parents).  The DP state after finishing a subtree is the pair
``(upflow, slack)``: how many unserved demand units leave the subtree
toward the root, and the minimum remaining QoS budget (in hops) over
those units.  Two subtree solutions with the same state are
interchangeable for every possible completion above them — a replica
higher up only cares how many units arrive and whether any of them has
run out of QoS budget — so keeping the cheapest cost per state (plus a
same-upflow Pareto filter over ``(slack, cost)``) is exact.

Per node the transitions are:

* account the node's own demand (units enter with the node's QoS bound),
* merge children states (upflows add, slacks take the minimum, each
  child's units pay one hop of budget crossing the edge; states whose
  units exhaust their budget are pruned),
* optionally open a replica, which under the Closest policy must absorb
  *all* arriving units — feasible only within the node's capacity — and
  resets the state to ``(0, inf)`` at the node's placement cost.

The root is feasible iff some state has upflow 0.  Complexity is
pseudo-polynomial in total demand — exact and fast for the golden tests
and (with demand quantisation, see ``TreeInstance.from_topology``) cheap
enough for the optimality-gap benchmark's per-object instances.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

from repro.optimal.instance import (
    INF_SLACK,
    PlacementEvaluation,
    TreeInstance,
    evaluate_tree_placement,
)

#: DP state: (unserved units flowing up, min remaining QoS budget).
State = tuple[int, int]


@dataclass(frozen=True)
class TreePlacement:
    """An optimal replica set, with its Closest-policy evaluation."""

    replicas: tuple[int, ...]
    cost: float
    #: Units absorbed at each replica site.
    loads: Mapping[int, int]
    #: Serving replica for each node with demand.
    assignment: Mapping[int, int]


def _pareto(states: dict[State, tuple]) -> dict[State, tuple]:
    """Drop dominated states: same upflow, no more slack, no cheaper.

    Entries are tuples whose first element is the cost; scanning each
    upflow group by descending slack and keeping strictly decreasing
    costs leaves exactly the Pareto frontier.
    """
    by_upflow: dict[int, list[tuple[int, tuple]]] = {}
    for (upflow, slack), entry in states.items():
        by_upflow.setdefault(upflow, []).append((slack, entry))
    out: dict[State, tuple] = {}
    for upflow, entries in by_upflow.items():
        entries.sort(key=lambda item: (-item[0], item[1][0]))
        best = math.inf
        for slack, entry in entries:
            if entry[0] < best:
                out[(upflow, slack)] = entry
                best = entry[0]
    return out


def solve_tree_placement(instance: TreeInstance) -> TreePlacement | None:
    """The minimum-cost feasible replica set, or ``None`` if none exists."""
    demand, capacity, qos = instance.demand, instance.capacity, instance.qos
    pcost = instance.placement_cost

    # final[v]: state -> (cost, placed_replica, merged_state)
    final: dict[int, dict[State, tuple[float, bool, State]]] = {}
    # partials[v][k]: state after merging the first k children ->
    #   (cost, previous_partial_state, child_final_state)
    partials: dict[int, list[dict[State, tuple[float, State | None, State | None]]]] = {}

    for v in reversed(instance.order):
        base_state: State = (demand[v], qos[v] if demand[v] > 0 else INF_SLACK)
        steps: list[dict[State, tuple[float, State | None, State | None]]] = [
            {base_state: (0.0, None, None)}
        ]
        for child in instance.children[v]:
            merged: dict[State, tuple[float, State | None, State | None]] = {}
            for state_a, entry_a in steps[-1].items():
                cost_a = entry_a[0]
                for state_c, entry_c in final[child].items():
                    up_c, slack_c = state_c
                    if up_c > 0:
                        slack_c -= 1  # the units pay the edge to v
                        if slack_c < 0:
                            continue
                    else:
                        slack_c = INF_SLACK
                    key = (state_a[0] + up_c, min(state_a[1], slack_c))
                    cost = cost_a + entry_c[0]
                    current = merged.get(key)
                    if current is None or cost < current[0]:
                        merged[key] = (cost, state_a, state_c)
            steps.append(_pareto(merged))
        partials[v] = steps

        finals: dict[State, tuple[float, bool, State]] = {}
        for state, entry in steps[-1].items():
            upflow = state[0]
            cost = entry[0]
            current = finals.get(state)
            if current is None or cost < current[0]:
                finals[state] = (cost, False, state)
            if upflow <= capacity[v]:
                # A replica here absorbs everything that arrives.
                absorbed: State = (0, INF_SLACK)
                rcost = cost + pcost[v]
                current = finals.get(absorbed)
                if current is None or rcost < current[0]:
                    finals[absorbed] = (rcost, True, state)
        final[v] = _pareto(finals)

    root_states = [
        (entry[0], state)
        for state, entry in final[instance.root].items()
        if state[0] == 0
    ]
    if not root_states:
        return None
    best_cost, best_state = min(root_states)

    replicas: list[int] = []
    stack: list[tuple[int, State]] = [(instance.root, best_state)]
    while stack:
        v, state = stack.pop()
        _, placed, merged_state = final[v][state]
        if placed:
            replicas.append(v)
        cursor: State | None = merged_state
        for k in range(len(instance.children[v]), 0, -1):
            child = instance.children[v][k - 1]
            _, prev_state, child_state = partials[v][k][cursor]
            stack.append((child, child_state))
            cursor = prev_state

    replicas.sort()
    check: PlacementEvaluation = evaluate_tree_placement(instance, replicas)
    if not check.feasible or abs(check.cost - best_cost) > 1e-9:
        raise AssertionError(
            f"tree DP reconstruction mismatch: {replicas} -> {check} "
            f"(expected cost {best_cost})"
        )
    return TreePlacement(
        replicas=tuple(replicas),
        cost=best_cost,
        loads=check.loads,
        assignment=check.assignment,
    )
