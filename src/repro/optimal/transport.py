"""Exact transportation solver: min-cost flow on a bipartite graph.

This is the optimality-gap oracle's engine.  Given per-source demands,
per-sink capacities, and per-(source, sink) unit costs, it computes an
*exact* minimum-cost assignment by successive shortest paths with
Johnson potentials — the LP optimum of the transportation problem (the
constraint matrix is totally unimodular, so the integer optimum and the
LP relaxation coincide).  Every gap ratio the harness reports divides a
measured protocol cost by one of these optima, which is what makes the
``ratio >= 1`` guarantee structural rather than empirical.

Pure Python, no external solver: instances in the harness are small
(tens of sinks, at most a few thousand aggregated sources).
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.errors import ConfigurationError


class MinCostFlow:
    """Successive-shortest-path min-cost max-flow (non-negative costs)."""

    def __init__(self, num_nodes: int) -> None:
        self._n = num_nodes
        self._graph: list[list[int]] = [[] for _ in range(num_nodes)]
        self._to: list[int] = []
        self._cap: list[float] = []
        self._cost: list[float] = []

    def add_edge(self, source: int, target: int, cap: float, cost: float) -> int:
        """Add a directed edge; returns its id (for flow readback)."""
        if cost < 0:
            raise ConfigurationError("MinCostFlow needs non-negative costs")
        edge_id = len(self._to)
        self._graph[source].append(edge_id)
        self._to.append(target)
        self._cap.append(cap)
        self._cost.append(cost)
        self._graph[target].append(edge_id + 1)
        self._to.append(source)
        self._cap.append(0.0)
        self._cost.append(-cost)
        return edge_id

    def flow_on(self, edge_id: int) -> float:
        """Flow pushed through the edge returned by :meth:`add_edge`."""
        return self._cap[edge_id ^ 1]

    def run(self, source: int, sink: int) -> tuple[float, float]:
        """Push max flow from source to sink; returns ``(flow, cost)``."""
        n = self._n
        to, cap, cost = self._to, self._cap, self._cost
        potential = [0.0] * n
        total_flow = 0.0
        total_cost = 0.0
        while True:
            dist = [math.inf] * n
            dist[source] = 0.0
            prev_edge = [-1] * n
            heap: list[tuple[float, int]] = [(0.0, source)]
            while heap:
                d, v = heapq.heappop(heap)
                if d > dist[v]:
                    continue
                for edge_id in self._graph[v]:
                    if cap[edge_id] <= 1e-12:
                        continue
                    u = to[edge_id]
                    nd = d + cost[edge_id] + potential[v] - potential[u]
                    if nd < dist[u] - 1e-12:
                        dist[u] = nd
                        prev_edge[u] = edge_id
                        heapq.heappush(heap, (nd, u))
            if not math.isfinite(dist[sink]):
                break
            for v in range(n):
                if math.isfinite(dist[v]):
                    potential[v] += dist[v]
            bottleneck = math.inf
            v = sink
            while v != source:
                edge_id = prev_edge[v]
                bottleneck = min(bottleneck, cap[edge_id])
                v = to[edge_id ^ 1]
            v = sink
            while v != source:
                edge_id = prev_edge[v]
                cap[edge_id] -= bottleneck
                cap[edge_id ^ 1] += bottleneck
                total_cost += bottleneck * cost[edge_id]
                v = to[edge_id ^ 1]
            total_flow += bottleneck
        return total_flow, total_cost


@dataclass(frozen=True)
class TransportPlan:
    """An optimal transportation assignment."""

    #: Total unit-cost of the optimal assignment.
    cost: float
    #: Units shipped (equals total supply iff the instance is feasible).
    shipped: float
    #: Total supply requested.
    supply: float
    #: ``flows[(supply_index, sink)]`` — units assigned, > 0 entries only.
    flows: Mapping[tuple[int, int], float]

    @property
    def feasible(self) -> bool:
        return self.shipped >= self.supply - 1e-9


def solve_transport(
    supplies: Sequence[tuple[float, Mapping[int, float]]],
    capacities: Mapping[int, float],
) -> TransportPlan:
    """Solve ``min sum flow * cost`` subject to supplies and capacities.

    ``supplies`` is a sequence of ``(amount, {sink: unit_cost})`` pairs;
    each supply may only ship to the sinks its cost map names.  Sinks
    absent from ``capacities`` have capacity 0.
    """
    sinks = sorted(capacities)
    sink_index = {sink: i for i, sink in enumerate(sinks)}
    num_supplies = len(supplies)
    source = 0
    sink_node = 1 + num_supplies + len(sinks)
    flow = MinCostFlow(sink_node + 1)
    arc_ids: dict[tuple[int, int], int] = {}
    total_supply = 0.0
    for i, (amount, costs) in enumerate(supplies):
        if amount < 0:
            raise ConfigurationError(f"negative supply at index {i}")
        if amount == 0:
            continue
        total_supply += amount
        flow.add_edge(source, 1 + i, amount, 0.0)
        for sink, unit_cost in sorted(costs.items()):
            if sink not in sink_index:
                raise ConfigurationError(
                    f"supply {i} names sink {sink} with no declared capacity"
                )
            arc_ids[(i, sink)] = flow.add_edge(
                1 + i, 1 + num_supplies + sink_index[sink], amount, float(unit_cost)
            )
    for sink in sinks:
        cap = float(capacities[sink])
        if cap < 0:
            raise ConfigurationError(f"negative capacity for sink {sink}")
        flow.add_edge(1 + num_supplies + sink_index[sink], sink_node, cap, 0.0)
    shipped, cost = flow.run(source, sink_node)
    flows = {
        key: flow.flow_on(edge_id)
        for key, edge_id in arc_ids.items()
        if flow.flow_on(edge_id) > 1e-9
    }
    return TransportPlan(
        cost=cost, shipped=shipped, supply=total_supply, flows=flows
    )
