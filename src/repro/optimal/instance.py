"""Single-object tree-placement instances (the Rehn-Sonigo formulation).

An instance is a rooted tree in which every node may carry client demand
(integer request units), a server capacity (the most units a replica
placed there can serve), and a QoS bound (the most hops a unit issued at
that node tolerates to its serving replica).  Under the *Closest*
allocation policy demand flows toward the root and is absorbed by the
first replica on the path — the policy the INRIA tree-placement papers
show admits exact bottom-up solutions, and a faithful offline analogue
of the paper's proximity-driven replication.

The placement *cost* is the sum of per-node placement costs over chosen
replica sites (uniform 1.0 by default, i.e. the replica count); distance
and QoS enter as feasibility constraints, not the objective.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.errors import ConfigurationError
from repro.topology.generators import node_capacities, node_qos
from repro.topology.graph import Topology

#: Slack value meaning "no unserved demand flowing up" (infinite QoS
#: budget).  Large enough that per-edge decrements never exhaust it.
INF_SLACK = 1 << 30


@dataclass(frozen=True)
class TreeInstance:
    """One rooted, annotated tree-placement problem."""

    #: ``parent[v]`` for every node (``-1`` for the root).
    parent: tuple[int, ...]
    #: ``children[v]`` in ascending node order.
    children: tuple[tuple[int, ...], ...]
    #: Breadth-first node order from the root (parents before children).
    order: tuple[int, ...]
    #: Hop distance from each node to the root.
    depth: tuple[int, ...]
    #: Integer request units issued at each node.
    demand: tuple[int, ...]
    #: Most units a replica placed at each node can serve.
    capacity: tuple[int, ...]
    #: Most hops each node's units tolerate to their serving replica.
    qos: tuple[int, ...]
    #: Cost of opening a replica at each node (uniform 1 = replica count).
    placement_cost: tuple[float, ...]
    root: int = 0

    def __post_init__(self) -> None:
        n = len(self.parent)
        for name in ("children", "order", "depth", "demand", "capacity", "qos",
                     "placement_cost"):
            if len(getattr(self, name)) != n:
                raise ConfigurationError(f"{name} must have {n} entries")
        if not 0 <= self.root < n or self.parent[self.root] != -1:
            raise ConfigurationError("root must be a node with parent -1")
        if any(d < 0 for d in self.demand):
            raise ConfigurationError("demands must be non-negative")
        if any(c < 0 for c in self.capacity):
            raise ConfigurationError("capacities must be non-negative")
        if any(q < 0 for q in self.qos):
            raise ConfigurationError("qos bounds must be non-negative")

    @property
    def num_nodes(self) -> int:
        return len(self.parent)

    @property
    def total_demand(self) -> int:
        return sum(self.demand)

    @classmethod
    def from_topology(
        cls,
        topology: Topology,
        demand: Mapping[int, float],
        *,
        root: int = 0,
        capacity: Mapping[int, float] | None = None,
        qos: Mapping[int, int] | None = None,
        placement_cost: Mapping[int, float] | None = None,
        demand_unit: float = 1.0,
    ) -> "TreeInstance":
        """Build an instance from an (annotated) tree topology.

        ``capacity``/``qos`` default to the topology's node annotations
        (see :func:`repro.topology.generators.node_capacities`).
        ``demand_unit`` quantises: demands round *up* and capacities
        round *down* to whole units, so a coarse instance is never
        easier than the exact one (its optimum upper-bounds the exact
        optimum's cost).
        """
        n = topology.num_nodes
        if topology.graph.number_of_edges() != n - 1:
            raise ConfigurationError(
                f"{topology.name!r} is not a tree "
                f"({topology.graph.number_of_edges()} edges on {n} nodes)"
            )
        if demand_unit <= 0:
            raise ConfigurationError("demand unit must be positive")
        parent = [-1] * n
        depth = [0] * n
        children: list[list[int]] = [[] for _ in range(n)]
        order = [root]
        seen = {root}
        for node in order:
            for neighbour in topology.neighbors(node):
                if neighbour in seen:
                    continue
                seen.add(neighbour)
                parent[neighbour] = node
                depth[neighbour] = depth[node] + 1
                children[node].append(neighbour)
                order.append(neighbour)
        if len(order) != n:  # pragma: no cover - Topology enforces connectivity
            raise ConfigurationError("tree walk did not reach every node")
        caps = capacity if capacity is not None else node_capacities(topology)
        bounds = qos if qos is not None else node_qos(topology)
        costs = placement_cost or {}
        return cls(
            parent=tuple(parent),
            children=tuple(tuple(kids) for kids in children),
            order=tuple(order),
            depth=tuple(depth),
            demand=tuple(
                int(math.ceil(float(demand.get(v, 0)) / demand_unit))
                for v in range(n)
            ),
            capacity=tuple(
                int(float(caps.get(v, 0)) / demand_unit) for v in range(n)
            ),
            qos=tuple(int(bounds.get(v, 0)) for v in range(n)),
            placement_cost=tuple(
                float(costs.get(v, 1.0)) for v in range(n)
            ),
            root=root,
        )


@dataclass(frozen=True)
class PlacementEvaluation:
    """The Closest-policy outcome of one candidate replica set."""

    feasible: bool
    cost: float
    #: Units absorbed at each replica site.
    loads: Mapping[int, int] = field(default_factory=dict)
    #: Serving replica for each node with demand.
    assignment: Mapping[int, int] = field(default_factory=dict)
    reason: str = ""


def evaluate_tree_placement(
    instance: TreeInstance, replicas: Iterable[int]
) -> PlacementEvaluation:
    """Evaluate a replica set under the Closest allocation policy.

    Every demand unit is served by the first replica on its node's path
    to the root — the placement fully determines the assignment.  The
    set is infeasible when some demand reaches the root unserved, a
    unit's hop count exceeds its node's QoS bound, or a replica absorbs
    more units than its capacity.
    """
    rset = set(replicas)
    loads: dict[int, int] = {r: 0 for r in rset}
    assignment: dict[int, int] = {}
    for v in range(instance.num_nodes):
        if instance.demand[v] == 0:
            continue
        node, hops = v, 0
        server = None
        while True:
            if node in rset:
                server = node
                break
            if node == instance.root:
                break
            node = instance.parent[node]
            hops += 1
        if server is None:
            return PlacementEvaluation(
                False, math.inf, reason=f"demand at {v} reaches the root unserved"
            )
        if hops > instance.qos[v]:
            return PlacementEvaluation(
                False, math.inf,
                reason=f"demand at {v} served {hops} hops away (qos {instance.qos[v]})",
            )
        loads[server] += instance.demand[v]
        assignment[v] = server
    for r in rset:
        if loads[r] > instance.capacity[r]:
            return PlacementEvaluation(
                False, math.inf,
                reason=f"replica at {r} absorbs {loads[r]} > capacity "
                f"{instance.capacity[r]}",
            )
    cost = sum(instance.placement_cost[r] for r in rset)
    return PlacementEvaluation(True, cost, loads=loads, assignment=assignment)
