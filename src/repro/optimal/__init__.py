"""Offline-optimal placement solvers and the optimality-gap oracle.

The paper's protocol makes placement decisions online from local load
and proximity statistics.  This package answers "how far from optimal is
that?" with three solvers of increasing generality:

* :mod:`repro.optimal.tree_dp` — exact single-object replica placement
  on annotated trees under the Closest allocation policy (capacity and
  QoS constrained), certified by the exhaustive search in
  :mod:`repro.optimal.brute_force`;
* :mod:`repro.optimal.transport` — an exact min-cost-flow transportation
  solver, the engine behind the gap harness's per-run lower bound;
* :mod:`repro.optimal.multi_object` — a capacity-aware greedy placer for
  many objects on arbitrary graphs (k-median style), used where
  exactness is out of reach.

:mod:`repro.optimal.gap` wires these into the simulator: it replays one
seeded workload through the paper protocol and each baseline strategy,
computes the offline-optimal cost for the demand each run actually saw,
and reports the ratio.
"""

from repro.optimal.brute_force import MAX_BRUTE_FORCE_NODES, brute_force_tree_placement
from repro.optimal.gap import (
    CapacityViolationCounter,
    DemandTrace,
    GapSettings,
    OracleBound,
    make_gap_topology,
    oracle_lower_bound,
    quick_settings,
    run_gap_benchmark,
    run_gap_point,
    tree_replica_gap,
    uunet_slice,
)
from repro.optimal.instance import (
    INF_SLACK,
    PlacementEvaluation,
    TreeInstance,
    evaluate_tree_placement,
)
from repro.optimal.multi_object import (
    MultiObjectPlacement,
    greedy_multi_object_placement,
    greedy_replica_set,
    weighted_distance,
)
from repro.optimal.transport import MinCostFlow, TransportPlan, solve_transport
from repro.optimal.tree_dp import TreePlacement, solve_tree_placement

__all__ = [
    "CapacityViolationCounter",
    "DemandTrace",
    "GapSettings",
    "INF_SLACK",
    "MAX_BRUTE_FORCE_NODES",
    "MinCostFlow",
    "MultiObjectPlacement",
    "OracleBound",
    "PlacementEvaluation",
    "TransportPlan",
    "TreeInstance",
    "TreePlacement",
    "brute_force_tree_placement",
    "evaluate_tree_placement",
    "greedy_multi_object_placement",
    "greedy_replica_set",
    "make_gap_topology",
    "oracle_lower_bound",
    "quick_settings",
    "run_gap_benchmark",
    "run_gap_point",
    "solve_transport",
    "solve_tree_placement",
    "tree_replica_gap",
    "uunet_slice",
    "weighted_distance",
]
