"""The optimality-gap harness: protocol vs offline-optimal placement.

For one seeded workload the harness runs the paper protocol and any set
of baseline strategies (resolved through the registry in
:mod:`repro.baselines`), records the demand trace each run actually
served, and computes an *offline-optimal* cost for that same trace:

* **Request-assignment oracle** — an exact transportation problem over
  the serviced requests.  Each object's candidate hosts are exactly the
  servers that served it in that run, per-request cost is the backbone
  distance from serving host to gateway, and per-host capacity is the
  larger of the nominal budget (``capacity x duration``) and the load
  the run actually put there.  The run's own assignment is feasible for
  this problem by construction, so ``oracle_cost <= protocol_cost``
  *structurally* — every reported ``gap_ratio`` is >= 1.
* **Tree replica oracle** — on tree topologies, the exact DP of
  :mod:`repro.optimal.tree_dp` gives the minimum replica count that
  could have served each hot object's observed demand under the Closest
  policy (reported alongside the protocol's replica counts; demand is
  quantised, see ``TreeInstance.from_topology``).

What the oracle sees that the protocol cannot: the complete demand
trace before placing anything, with no detection delays, no stale load
reports and no migration costs.  The gap therefore bounds the *price of
online operation* — protocol overhead plus reaction lag — not mere
implementation slack.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

import networkx as nx

from repro.errors import ConfigurationError
from repro.network.faults import FaultConfig
from repro.scenarios.config import ScenarioConfig
from repro.topology import (
    balanced_tree_topology,
    node_qos,
    uunet_backbone,
)
from repro.topology.graph import Topology
from repro.optimal.instance import TreeInstance
from repro.optimal.transport import solve_transport
from repro.optimal.tree_dp import solve_tree_placement
from repro.types import NodeId, ObjectId, RequestRecord, Time

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.host import HostServer
    from repro.routing.routes_db import RoutingDatabase
    from repro.scenarios.runner import ScenarioResult


class DemandTrace:
    """Request observer: the serviced demand of one run, aggregated.

    Records, per object, how many requests each gateway had serviced and
    by which servers — plus the run's total assignment cost, measured as
    backbone distance from serving host to gateway per serviced request
    (the same distance matrix the oracle prices with).
    """

    def __init__(self, routes: "RoutingDatabase") -> None:
        self._routes = routes
        #: obj -> gateway -> serviced request count.
        self.demand: dict[ObjectId, dict[NodeId, int]] = {}
        #: obj -> servers that serviced at least one of its requests.
        self.servers: dict[ObjectId, set[NodeId]] = {}
        #: host -> serviced request count (the run's realised loads).
        self.served_by: dict[NodeId, int] = {}
        #: Total distance-weighted assignment cost of the run.
        self.cost = 0.0
        #: Serviced request count.
        self.serviced = 0

    def __call__(self, record: RequestRecord) -> None:
        if record.dropped or record.failed or record.lost or record.server < 0:
            return
        per_gateway = self.demand.setdefault(record.obj, {})
        per_gateway[record.gateway] = per_gateway.get(record.gateway, 0) + 1
        self.servers.setdefault(record.obj, set()).add(record.server)
        self.served_by[record.server] = self.served_by.get(record.server, 0) + 1
        self.cost += self._routes.distance(record.server, record.gateway)
        self.serviced += 1


class CapacityViolationCounter:
    """Measurement observer: host-intervals above nominal capacity.

    The protocol reacts to load with a lag (measurement intervals, stale
    board reports); every measurement tick whose interval load exceeded
    the host's service capacity is one interval a clairvoyant placement
    could have avoided.  ``violations`` counts those host-intervals;
    ``intervals`` counts all observed host-intervals.
    """

    def __init__(self) -> None:
        self.violations = 0
        self.intervals = 0

    def __call__(self, host: "HostServer", now: Time) -> None:
        self.intervals += 1
        capacity = 1.0 / host.service_time
        if host.measured_load > capacity * (1.0 + 1e-9):
            self.violations += 1


@dataclass(frozen=True)
class OracleBound:
    """The offline request-assignment optimum for one run's trace."""

    cost: float
    #: The run's own assignment cost over the same trace.
    protocol_cost: float
    #: Requests covered (equals the run's serviced count).
    requests: int
    #: Objects whose demand entered the flow network (the rest were
    #: single-server and force-assigned).
    contested_objects: int

    @property
    def gap_ratio(self) -> float:
        """``protocol_cost / oracle_cost`` (1.0 when both are zero)."""
        if self.cost <= 0:
            return 1.0 if self.protocol_cost <= 0 else math.inf
        return self.protocol_cost / self.cost


def oracle_lower_bound(
    trace: DemandTrace,
    routes: "RoutingDatabase",
    *,
    capacity: float,
    duration: float,
) -> OracleBound:
    """Exact offline optimum for the trace's request assignment.

    Candidate hosts per object are the servers that actually serviced it
    (replica placement the run itself established and paid for); host
    budgets are ``max(ceil(capacity x duration) + 1, realised load)`` so
    the run's own assignment is always feasible and the optimum can only
    be cheaper.  Single-server objects are force-assigned; only objects
    with a genuine server choice enter the min-cost-flow network.
    """
    budget = int(math.ceil(capacity * duration)) + 1
    capacities = {
        host: float(max(budget, load)) for host, load in trace.served_by.items()
    }
    forced_cost = 0.0
    supplies: list[tuple[float, dict[int, float]]] = []
    contested: set[ObjectId] = set()
    for obj in sorted(trace.demand):
        hosts = sorted(trace.servers[obj])
        for gateway, count in sorted(trace.demand[obj].items()):
            if len(hosts) == 1:
                host = hosts[0]
                forced_cost += count * routes.distance(gateway, host)
                capacities[host] -= count
            else:
                contested.add(obj)
                supplies.append(
                    (
                        float(count),
                        {h: float(routes.distance(gateway, h)) for h in hosts},
                    )
                )
    # Forced deductions cannot exhaust a budget the realised load fit in.
    capacities = {h: max(0.0, c) for h, c in capacities.items()}
    flow_cost = 0.0
    if supplies:
        plan = solve_transport(supplies, capacities)
        if not plan.feasible:  # pragma: no cover - feasible by construction
            raise ConfigurationError("oracle transport infeasible")
        flow_cost = plan.cost
    return OracleBound(
        cost=forced_cost + flow_cost,
        protocol_cost=trace.cost,
        requests=trace.serviced,
        contested_objects=len(contested),
    )


def tree_replica_gap(
    trace: DemandTrace,
    topology: Topology,
    result: "ScenarioResult",
    *,
    top_objects: int = 8,
    max_units: int = 400,
) -> dict[str, float | int | None]:
    """Exact minimum replica counts for the hottest objects, on a tree.

    For each of the ``top_objects`` hottest objects, solve the tree DP
    on the observed per-gateway demand (quantised to at most
    ``max_units`` units) with per-node serving budget ``capacity x
    duration`` and the topology's QoS annotations, and compare the
    summed optimal replica count against the protocol's final replica
    counts for the same objects.
    """
    if topology.graph.number_of_edges() != topology.num_nodes - 1:
        raise ConfigurationError(f"{topology.name!r} is not a tree")
    config = result.config
    budget = config.capacity * config.duration
    ranked = sorted(
        trace.demand.items(), key=lambda item: (-sum(item[1].values()), item[0])
    )[:top_objects]
    qos = node_qos(topology)
    oracle_replicas = 0
    protocol_replicas = 0
    solved = 0
    for obj, demand in ranked:
        total = sum(demand.values())
        unit = max(1.0, total / max_units)
        instance = TreeInstance.from_topology(
            topology,
            demand,
            capacity={v: budget for v in range(topology.num_nodes)},
            qos=qos,
            demand_unit=unit,
        )
        placement = solve_tree_placement(instance)
        if placement is None:  # pragma: no cover - root budget covers demand
            continue
        solved += 1
        oracle_replicas += len(placement.replicas)
        protocol_replicas += len(
            result.system.redirectors.for_object(obj).replica_hosts(obj)
        )
    return {
        "objects": solved,
        "oracle_replicas": oracle_replicas,
        "protocol_replicas": protocol_replicas,
        "replica_ratio": (
            protocol_replicas / oracle_replicas if oracle_replicas else None
        ),
    }


# ----------------------------------------------------------------------
# Benchmark driver
# ----------------------------------------------------------------------

#: Strategies a default gap run compares (ADR excluded: different system
#: class, see the registry docstring).
DEFAULT_STRATEGIES = ("paper", "static", "offline-greedy", "availability-aware")


@dataclass(frozen=True)
class GapSettings:
    """One gap-benchmark campaign: topologies x loads x faults x strategies."""

    #: Topology specs: "uunet" (the backbone), "uunet-slice" (first 13
    #: nodes' subgraph re-solved as a backbone seed variant) or
    #: "ktree-B-H" (balanced tree, branching B, height H).
    topologies: tuple[str, ...] = ("ktree-3-2", "uunet")
    #: Multipliers on the base per-gateway request rate.
    load_scales: tuple[float, ...] = (0.5, 1.0, 2.0)
    #: Host MTBF values; ``None`` = fault-free.  MTTR is ``mtbf/10``.
    fault_mtbfs: tuple[float | None, ...] = (None, 600.0)
    strategies: tuple[str, ...] = DEFAULT_STRATEGIES
    seed: int = 1
    workload: str = "zipf"
    duration: float = 300.0
    num_objects: int = 400
    node_request_rate: float = 4.0
    capacity: float = 20.0
    #: Tree-DP replica gap: hottest objects per point (trees only).
    top_objects: int = 8

    def base_config(self) -> ScenarioConfig:
        return ScenarioConfig(
            name="optgap",
            workload=self.workload,
            seed=self.seed,
            duration=self.duration,
            num_objects=self.num_objects,
            node_request_rate=self.node_request_rate,
            capacity=self.capacity,
        )


def quick_settings() -> GapSettings:
    """The CI-sized campaign (used by ``--quick`` and the smoke gate)."""
    return GapSettings(
        topologies=("ktree-2-2", "uunet-slice-13"),
        load_scales=(0.5, 1.0, 2.0),
        fault_mtbfs=(None, 300.0),
        strategies=("paper", "static"),
        duration=120.0,
        num_objects=120,
        node_request_rate=2.0,
        capacity=10.0,
    )


def uunet_slice(num_nodes: int, seed: int) -> Topology:
    """A connected ``num_nodes``-node slice of the synthetic backbone.

    Breadth-first from node 0, keeping the induced subgraph of the first
    ``num_nodes`` nodes reached (connected by construction) and
    relabelling them ``0..n-1`` in visit order.  Regions carry over, so
    regional workloads still work on the slice.
    """
    full = uunet_backbone(seed)
    if not 1 <= num_nodes <= full.num_nodes:
        raise ConfigurationError(
            f"slice size must be in 1..{full.num_nodes}, got {num_nodes}"
        )
    visit = [0]
    seen = {0}
    for node in visit:
        if len(visit) >= num_nodes:
            break
        for neighbour in full.neighbors(node):
            if neighbour not in seen and len(visit) < num_nodes:
                seen.add(neighbour)
                visit.append(neighbour)
    relabel = {old: new for new, old in enumerate(visit)}
    graph = nx.Graph()
    graph.add_nodes_from(range(num_nodes))
    for u, v in full.graph.subgraph(visit).edges:
        graph.add_edge(relabel[u], relabel[v])
    regions = None
    if full.has_regions:
        regions = {relabel[old]: full.region(old) for old in visit}
    return Topology(
        graph, regions=regions, name=f"uunet-slice-{num_nodes}-s{seed}"
    )


def make_gap_topology(spec: str, seed: int) -> Topology | None:
    """Resolve a topology spec string (``None`` = the default backbone)."""
    if spec == "uunet":
        return None
    if spec.startswith("ktree-"):
        try:
            _, branching, height = spec.split("-")
            return balanced_tree_topology(int(branching), int(height))
        except ValueError:
            raise ConfigurationError(
                f"bad tree spec {spec!r} (want ktree-<branching>-<height>)"
            ) from None
    if spec.startswith("uunet-slice"):
        tail = spec.removeprefix("uunet-slice")
        size = 13
        if tail:
            try:
                size = int(tail.removeprefix("-"))
            except ValueError:
                raise ConfigurationError(
                    f"bad slice spec {spec!r} (want uunet-slice-<nodes>)"
                ) from None
        return uunet_slice(size, seed)
    raise ConfigurationError(
        f"unknown gap topology {spec!r} (want uunet, uunet-slice-N or ktree-B-H)"
    )


def run_gap_point(
    config: ScenarioConfig,
    *,
    topology: Topology | None = None,
    top_objects: int = 8,
) -> dict[str, object]:
    """Run one strategy at one (load, fault) point and report its gap."""
    from repro.scenarios.runner import run_scenario, scenario_metrics

    if topology is None:
        topology = uunet_backbone(config.topology_seed)
    is_tree = topology.graph.number_of_edges() == topology.num_nodes - 1
    violations = CapacityViolationCounter()
    # The trace needs the run's routing distances; build them the same
    # way the runner will (RoutingDatabase is deterministic per topology).
    from repro.routing.routes_db import RoutingDatabase

    routes = RoutingDatabase(topology)
    trace = DemandTrace(routes)
    result = run_scenario(
        config,
        topology=topology,
        request_observers=(trace,),
        measurement_observers=(violations,),
    )
    bound = oracle_lower_bound(
        trace, routes, capacity=config.capacity, duration=config.duration
    )
    metrics = scenario_metrics(result)
    point: dict[str, object] = {
        "strategy": config.strategy,
        "requests_serviced": trace.serviced,
        "protocol_cost": bound.protocol_cost,
        "oracle_cost": bound.cost,
        "gap_ratio": bound.gap_ratio,
        "contested_objects": bound.contested_objects,
        "capacity_violations": violations.violations,
        "capacity_intervals": violations.intervals,
        "replicas_per_object": metrics["replicas_per_object"],
        "requests_completed": metrics["requests_completed"],
        "requests_dropped": metrics["requests_dropped"],
        "relocations": metrics["relocations"],
    }
    if is_tree:
        point["tree_gap"] = tree_replica_gap(
            trace, topology, result, top_objects=top_objects
        )
    return point


def run_gap_benchmark(
    settings: GapSettings, *, progress=None
) -> dict[str, object]:
    """The full campaign: every topology x load x fault x strategy point.

    Every point at one (topology, load, fault) coordinate replays the
    *same* seeded workload — only the strategy differs — so gap ratios
    are comparable across strategies.  Returns the ``BENCH_optgap.json``
    payload.
    """
    base = settings.base_config()
    points: list[dict[str, object]] = []
    for spec in settings.topologies:
        topology = make_gap_topology(spec, base.topology_seed)
        for load_scale in settings.load_scales:
            for mtbf in settings.fault_mtbfs:
                faults = FaultConfig()
                if mtbf is not None:
                    faults = FaultConfig(
                        enabled=True, mtbf=float(mtbf), mttr=float(mtbf) / 10.0
                    )
                for strategy in settings.strategies:
                    config = base.replace(
                        node_request_rate=base.node_request_rate * load_scale,
                        strategy=strategy,
                        faults=faults,
                    )
                    if progress is not None:
                        progress(spec, load_scale, mtbf, strategy)
                    point = run_gap_point(
                        config,
                        topology=topology,
                        top_objects=settings.top_objects,
                    )
                    point.update(
                        topology=spec,
                        load_scale=load_scale,
                        fault_mtbf=mtbf,
                    )
                    points.append(point)
    return {
        "schema": "optgap-v1",
        "benchmark": "optimality_gap",
        "settings": {
            "topologies": list(settings.topologies),
            "load_scales": list(settings.load_scales),
            "fault_mtbfs": list(settings.fault_mtbfs),
            "strategies": list(settings.strategies),
            "seed": settings.seed,
            "workload": settings.workload,
            "duration": settings.duration,
            "num_objects": settings.num_objects,
            "node_request_rate": settings.node_request_rate,
            "capacity": settings.capacity,
        },
        "points": points,
    }
