"""Greedy multi-object placement on arbitrary graphs.

The tree DP is exact but single-object and tree-only.  This module
covers the general case the benchmark also needs — many objects sharing
per-host capacity on an arbitrary topology (e.g. the UUNET backbone) —
with a capacity-aware greedy: each object first receives one mandatory
replica (cheapest host with room, largest objects placed first), then
replicas are added wherever they buy the largest drop in total
demand-weighted distance, re-assigning each gateway to its nearest
replica after every addition.  Greedy k-median style placement is the
standard approximation here; the exact transportation solver in
:mod:`repro.optimal.transport` is what the gap harness uses when it
needs a true lower bound.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Hashable, Mapping, Sequence

from repro.errors import ConfigurationError

Distance = Callable[[int, int], float]


def weighted_distance(
    demand: Mapping[int, float], hosts: Sequence[int], distance: Distance
) -> float:
    """Total demand-weighted distance to the nearest host in ``hosts``."""
    if not hosts:
        return math.inf
    return sum(
        weight * min(distance(gateway, host) for host in hosts)
        for gateway, weight in demand.items()
        if weight > 0
    )


def greedy_replica_set(
    demand: Mapping[int, float],
    candidates: Sequence[int],
    distance: Distance,
    count: int,
) -> tuple[int, ...]:
    """Pick ``count`` hosts greedily minimising demand-weighted distance.

    Classic greedy k-median: each round adds the candidate whose
    addition most reduces the total weighted distance to the nearest
    chosen host, breaking ties toward the lowest node id.
    """
    if count < 1:
        raise ConfigurationError("replica sets need at least one member")
    pool = sorted(set(candidates))
    if not pool:
        raise ConfigurationError("no candidate hosts to place on")
    points = [(g, w) for g, w in sorted(demand.items()) if w > 0]
    chosen: list[int] = []
    nearest = {g: math.inf for g, _ in points}
    while pool and len(chosen) < count:
        best_host = None
        best_cost = math.inf
        for host in pool:
            cost = sum(
                w * min(nearest[g], distance(g, host)) for g, w in points
            )
            if cost < best_cost - 1e-12:
                best_cost = cost
                best_host = host
        if best_host is None:
            best_host = pool[0]
        chosen.append(best_host)
        pool.remove(best_host)
        for g, _ in points:
            nearest[g] = min(nearest[g], distance(g, best_host))
    return tuple(sorted(chosen))


@dataclass(frozen=True)
class MultiObjectPlacement:
    """Result of the capacity-aware greedy placer."""

    #: ``placements[obj]`` — sorted replica hosts for each object.
    placements: Mapping[Hashable, tuple[int, ...]]
    #: Total demand-weighted distance under nearest-replica assignment.
    cost: float
    #: Demand units absorbed at each host.
    loads: Mapping[int, float]
    #: Objects whose mandatory replica did not fit any host's remaining
    #: capacity (placed anyway on the cheapest host, overflowing it).
    overflowed: tuple[Hashable, ...]
    #: Total replicas placed.
    replica_count: int


def greedy_multi_object_placement(
    demands: Mapping[Hashable, Mapping[int, float]],
    candidates: Sequence[int],
    distance: Distance,
    *,
    capacities: Mapping[int, float] | None = None,
    max_replicas_per_object: int = 3,
    replica_cost: float = 0.0,
) -> MultiObjectPlacement:
    """Place every object's replicas under a shared per-host capacity.

    ``demands`` maps each object to its per-gateway request weight.
    ``capacities`` bounds the demand a host absorbs across all objects
    (``None`` = unbounded).  ``replica_cost`` charges a fixed amount per
    extra replica, so improvement rounds only add copies whose distance
    savings exceed it.
    """
    if max_replicas_per_object < 1:
        raise ConfigurationError("objects need at least one replica")
    pool = sorted(set(candidates))
    if not pool:
        raise ConfigurationError("no candidate hosts to place on")
    caps = {h: math.inf for h in pool}
    if capacities is not None:
        caps = {h: float(capacities.get(h, 0.0)) for h in pool}
    loads = {h: 0.0 for h in pool}

    def nearest_split(
        demand: Mapping[int, float], hosts: Sequence[int]
    ) -> dict[int, float]:
        split = {h: 0.0 for h in hosts}
        for gateway, weight in sorted(demand.items()):
            if weight <= 0:
                continue
            server = min(hosts, key=lambda h: (distance(gateway, h), h))
            split[server] += weight
        return split

    # Mandatory replica per object, heaviest objects first so they get
    # first claim on scarce capacity.
    ordered = sorted(
        demands.items(), key=lambda item: (-sum(item[1].values()), str(item[0]))
    )
    placements: dict[Hashable, list[int]] = {}
    overflowed: list[Hashable] = []
    for obj, demand in ordered:
        total = sum(w for w in demand.values() if w > 0)
        fitting = [h for h in pool if caps[h] - loads[h] >= total]
        scored = fitting or pool
        host = min(
            scored,
            key=lambda h: (weighted_distance(demand, [h], distance), h),
        )
        if not fitting:
            overflowed.append(obj)
        placements[obj] = [host]
        loads[host] += total

    # Improvement rounds: add the single (object, host) replica with the
    # best net gain, re-splitting that object's demand by nearest host.
    while True:
        best = None
        best_gain = 1e-9
        for obj, demand in ordered:
            hosts = placements[obj]
            if len(hosts) >= max_replicas_per_object:
                continue
            current_cost = weighted_distance(demand, hosts, distance)
            current_split = nearest_split(demand, hosts)
            for host in pool:
                if host in hosts:
                    continue
                trial = hosts + [host]
                new_split = nearest_split(demand, trial)
                # Only the demand moving onto `host` needs headroom.
                if loads[host] + new_split[host] > caps[host] + 1e-9:
                    continue
                gain = (
                    current_cost
                    - weighted_distance(demand, trial, distance)
                    - replica_cost
                )
                if gain > best_gain + 1e-12:
                    best_gain = gain
                    best = (obj, host, current_split, new_split)
        if best is None:
            break
        obj, host, current_split, new_split = best
        placements[obj].append(host)
        for h, moved in current_split.items():
            loads[h] -= moved
        for h, moved in new_split.items():
            loads[h] += moved

    final = {obj: tuple(sorted(hosts)) for obj, hosts in placements.items()}
    cost = sum(
        weighted_distance(demands[obj], hosts, distance)
        for obj, hosts in final.items()
    )
    return MultiObjectPlacement(
        placements=final,
        cost=cost,
        loads={h: load for h, load in loads.items() if load > 0},
        overflowed=tuple(overflowed),
        replica_count=sum(len(hosts) for hosts in final.values()),
    )
