"""Exhaustive replica-set enumeration — the DP's golden reference.

Enumerates every subset of nodes, evaluates each under the Closest
allocation policy (the same :func:`evaluate_tree_placement` the DP's
reconstruction check uses), and returns the cheapest feasible one.
Exponential on purpose: its only job is to certify the DP on small
instances, so it refuses trees large enough to be slow.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.optimal.instance import TreeInstance, evaluate_tree_placement
from repro.optimal.tree_dp import TreePlacement

#: Enumeration is 2^n; keep the golden reference honest and fast.
MAX_BRUTE_FORCE_NODES = 18


def brute_force_tree_placement(instance: TreeInstance) -> TreePlacement | None:
    """The optimal placement by exhaustive search, or ``None`` if infeasible."""
    n = instance.num_nodes
    if n > MAX_BRUTE_FORCE_NODES:
        raise ConfigurationError(
            f"brute force is limited to {MAX_BRUTE_FORCE_NODES} nodes, got {n}"
        )
    best_cost = None
    best = None
    for mask in range(1 << n):
        replicas = [v for v in range(n) if mask >> v & 1]
        evaluation = evaluate_tree_placement(instance, replicas)
        if not evaluation.feasible:
            continue
        if best_cost is None or evaluation.cost < best_cost:
            best_cost = evaluation.cost
            best = (tuple(replicas), evaluation)
    if best is None:
        return None
    replicas, evaluation = best
    return TreePlacement(
        replicas=replicas,
        cost=evaluation.cost,
        loads=evaluation.loads,
        assignment=evaluation.assignment,
    )
