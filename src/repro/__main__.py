"""Command-line interface: ``python -m repro``.

Runs one paper scenario and prints the evaluation summary — the same
metrics the benchmark harness reports, for ad-hoc exploration:

    python -m repro --workload regional --scale 0.15 --duration 1800
    python -m repro --workload zipf --high-load --distribution closest

Fault-injection flags enable the unreliable-network fault plane
(message loss, host outages, heartbeat detection, replica repair):

    python -m repro --workload zipf --loss 0.05 --outage 3:60:120
    python -m repro --workload zipf --mtbf 900 --mttr 120 --json run.json

The ``trace`` subcommand runs a scenario with the decision tracer
attached and emits the structured protocol trace as JSONL (stdout by
default; the run summary goes to stderr):

    python -m repro trace --preset zipf > trace.jsonl
    python -m repro trace --preset regional --kind placement --out p.jsonl

The ``sweep`` subcommand fans a scenario x seed x parameter grid out
across worker processes and aggregates the per-run metrics (mean,
stddev, 95% CI), optionally writing a JSONL run manifest and a JSON
summary:

    python -m repro sweep --preset zipf --seeds 4 --workers 4
    python -m repro sweep --preset regional --set protocol.placement_interval=50,100 \
        --manifest sweep.jsonl --json summary.json
    python -m repro sweep --smoke --json bench_smoke.json   # the CI gate sweep
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.metrics.report import format_table, series_summary
from repro.obs.export import dump_jsonl, write_jsonl
from repro.obs.records import RECORD_KINDS
from repro.obs.tracer import DEFAULT_CAPACITY
from repro.scenarios.presets import WORKLOAD_NAMES, paper_scenario
from repro.scenarios.runner import run_scenario, scenario_metrics
from repro.sweep import SweepSpec, default_workers, run_sweep, smoke_spec


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Run one scenario of the ICDCS 1999 dynamic replication "
            "protocol reproduction."
        ),
    )
    parser.add_argument(
        "--workload",
        choices=[*WORKLOAD_NAMES, "uniform"],
        default="zipf",
        help="request pattern (default: zipf)",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=0.15,
        help="load-axis scale relative to Table 1 (default: 0.15)",
    )
    parser.add_argument(
        "--duration",
        type=float,
        default=1800.0,
        help="simulated seconds (default: 1800)",
    )
    parser.add_argument(
        "--seed", type=int, default=1, help="scenario seed (default: 1)"
    )
    parser.add_argument(
        "--high-load",
        action="store_true",
        help="use the Figure 9 watermarks (50/40 instead of 90/80)",
    )
    parser.add_argument(
        "--static",
        action="store_true",
        help="disable dynamic placement (the static baseline)",
    )
    parser.add_argument(
        "--distribution",
        choices=["paper", "round-robin", "closest"],
        default="paper",
        help="request-distribution policy (default: paper)",
    )
    faults = parser.add_argument_group(
        "fault injection",
        "any of these enables the unreliable-network fault plane",
    )
    faults.add_argument(
        "--loss",
        type=float,
        default=None,
        metavar="P",
        help="per-message drop probability in [0, 1)",
    )
    faults.add_argument(
        "--dup",
        type=float,
        default=None,
        metavar="P",
        help="per-message duplication probability in [0, 1)",
    )
    faults.add_argument(
        "--jitter",
        type=float,
        default=None,
        metavar="F",
        help="extra delay jitter as a fraction of the base delay",
    )
    faults.add_argument(
        "--mtbf",
        type=float,
        default=None,
        metavar="S",
        help="mean time between host failures (with --mttr: random outages)",
    )
    faults.add_argument(
        "--mttr",
        type=float,
        default=None,
        metavar="S",
        help="mean time to repair a failed host",
    )
    faults.add_argument(
        "--outage",
        action="append",
        default=None,
        metavar="NODE:AT:DUR",
        help="crash NODE at AT seconds for DUR seconds (repeatable)",
    )
    parser.add_argument(
        "--json",
        dest="json_out",
        default=None,
        metavar="PATH",
        help="also write the run's scalar metrics as JSON here",
    )
    return parser


def _parse_outage(text: str) -> tuple[int, float, float]:
    parts = text.split(":")
    if len(parts) != 3:
        raise SystemExit(f"bad --outage {text!r}; expected NODE:AT:DUR")
    try:
        return int(parts[0]), float(parts[1]), float(parts[2])
    except ValueError:
        raise SystemExit(f"bad --outage {text!r}; expected NODE:AT:DUR") from None


def _fault_config(args: argparse.Namespace):
    """A FaultConfig from CLI flags, or None when none were given."""
    flags = (args.loss, args.dup, args.jitter, args.mtbf, args.mttr, args.outage)
    if all(value is None for value in flags):
        return None
    if (args.mtbf is None) != (args.mttr is None):
        raise SystemExit("--mtbf and --mttr must be given together")
    from repro.network.faults import FaultConfig

    return FaultConfig(
        enabled=True,
        drop_prob=args.loss or 0.0,
        duplicate_prob=args.dup or 0.0,
        delay_jitter=args.jitter or 0.0,
        mtbf=args.mtbf,
        mttr=args.mttr,
        outages=tuple(_parse_outage(o) for o in args.outage or ()),
    )


def build_trace_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro trace",
        description=(
            "Run one scenario with the protocol decision tracer attached "
            "and emit the trace as JSONL."
        ),
    )
    parser.add_argument(
        "--preset",
        choices=[*WORKLOAD_NAMES, "uniform"],
        default="zipf",
        help="workload preset to trace (default: zipf)",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=0.15,
        help="load-axis scale relative to Table 1 (default: 0.15)",
    )
    parser.add_argument(
        "--duration",
        type=float,
        default=600.0,
        help="simulated seconds (default: 600)",
    )
    parser.add_argument(
        "--seed", type=int, default=1, help="scenario seed (default: 1)"
    )
    parser.add_argument(
        "--high-load",
        action="store_true",
        help="use the Figure 9 watermarks (50/40 instead of 90/80)",
    )
    parser.add_argument(
        "--capacity",
        type=int,
        default=DEFAULT_CAPACITY,
        help=f"per-kind trace ring capacity (default: {DEFAULT_CAPACITY})",
    )
    parser.add_argument(
        "--kind",
        choices=list(RECORD_KINDS),
        action="append",
        default=None,
        help="emit only this record kind (repeatable; default: all)",
    )
    parser.add_argument(
        "--out",
        default="-",
        help="output path for the JSONL trace ('-' = stdout, the default)",
    )
    return parser


def build_sweep_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro sweep",
        description=(
            "Run a scenario x seed x parameter-override sweep across "
            "worker processes and aggregate the metrics."
        ),
    )
    parser.add_argument(
        "--preset",
        choices=[*WORKLOAD_NAMES, "uniform"],
        default="zipf",
        help="workload preset to sweep (default: zipf)",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=0.15,
        help="load-axis scale relative to Table 1 (default: 0.15)",
    )
    parser.add_argument(
        "--duration",
        type=float,
        default=600.0,
        help="simulated seconds per run (default: 600)",
    )
    parser.add_argument(
        "--high-load",
        action="store_true",
        help="use the Figure 9 watermarks (50/40 instead of 90/80)",
    )
    parser.add_argument(
        "--seeds",
        type=int,
        default=0,
        metavar="N",
        help="derive N seeds from --root-seed (default: the preset's seed)",
    )
    parser.add_argument(
        "--seed-list",
        default=None,
        metavar="S1,S2,...",
        help="explicit comma-separated seeds (overrides --seeds)",
    )
    parser.add_argument(
        "--root-seed",
        type=int,
        default=0,
        help="root seed for --seeds derivation (default: 0)",
    )
    parser.add_argument(
        "--set",
        dest="overrides",
        action="append",
        default=None,
        metavar="KEY=V1[,V2,...]",
        help=(
            "grid axis: dotted config key and comma-separated values, e.g. "
            "protocol.placement_interval=50,100 (repeatable; axes combine "
            "as a cartesian product)"
        ),
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes (default: REPRO_SWEEP_WORKERS or CPU count, max 8)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-run timeout in wall-clock seconds (workers > 1 only)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=1,
        help="retries for a run whose worker crashed (default: 1)",
    )
    parser.add_argument(
        "--manifest",
        default=None,
        metavar="PATH",
        help="write the JSONL run manifest here",
    )
    parser.add_argument(
        "--json",
        dest="json_out",
        default=None,
        metavar="PATH",
        help="write the aggregate sweep summary as JSON here",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=(
            "ignore scenario options and run the canonical CI smoke sweep "
            "(fixed spec shared with benchmarks/reports/baseline.json)"
        ),
    )
    return parser


def _parse_override_value(text: str):
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            continue
    if text in ("true", "false"):
        return text == "true"
    return text


def _parse_axes(pairs: list[str] | None) -> dict[str, list]:
    axes: dict[str, list] = {}
    for pair in pairs or []:
        key, sep, values = pair.partition("=")
        if not sep or not key:
            raise SystemExit(f"bad --set {pair!r}; expected KEY=V1[,V2,...]")
        axes[key] = [
            _parse_override_value(v) for v in values.split(",") if v != ""
        ]
    return axes


def sweep_main(argv: list[str]) -> int:
    args = build_sweep_parser().parse_args(argv)
    if args.smoke:
        spec = smoke_spec()
    else:
        base = paper_scenario(
            args.preset,
            high_load=args.high_load,
            scale=args.scale,
            duration=args.duration,
        )
        seeds: tuple[int, ...] = ()
        if args.seed_list:
            seeds = tuple(int(s) for s in args.seed_list.split(","))
        spec = SweepSpec.grid(
            base,
            _parse_axes(args.overrides),
            seeds=seeds,
            num_seeds=0 if seeds else args.seeds,
            root_seed=args.root_seed,
            name=f"{args.preset}-sweep",
        )
    workers = args.workers if args.workers is not None else default_workers()
    runs = spec.runs()
    print(
        f"sweep {spec.name!r}: {len(runs)} runs "
        f"({len(spec.points)} points x {len(spec.resolved_seeds())} seeds), "
        f"{workers} worker(s), spec {spec.spec_hash()}",
        file=sys.stderr,
    )
    result = run_sweep(
        spec,
        workers=workers,
        timeout=args.timeout,
        retries=args.retries,
        manifest_path=args.manifest,
    )
    for point, metrics in result.aggregate().items():
        rows = [
            [name, f"{s.mean:.4g}", f"{s.stdev:.3g}", f"{s.ci95:.3g}"]
            for name, s in metrics.items()
        ]
        print(f"\n[{point}]")
        print(format_table(["metric", "mean", "stdev", "95% CI"], rows))
    print(
        f"\n{len(result.ok_records)}/{len(result.records)} runs ok in "
        f"{result.wall_time_s:.1f}s wall "
        f"({result.throughput():.0f} serviced requests/s)"
    )
    for failure in result.failures:
        print(
            f"FAILED run {failure.index} ({failure.point}/seed={failure.seed}): "
            f"{failure.status}: {failure.error}",
            file=sys.stderr,
        )
    if args.json_out:
        with open(args.json_out, "w") as handle:
            json.dump(result.summary(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote summary to {args.json_out}", file=sys.stderr)
    if args.manifest:
        print(f"wrote manifest to {args.manifest}", file=sys.stderr)
    return 0 if not result.failures else 1


def trace_main(argv: list[str]) -> int:
    args = build_trace_parser().parse_args(argv)
    config = paper_scenario(
        args.preset,
        high_load=args.high_load,
        scale=args.scale,
        duration=args.duration,
        seed=args.seed,
    ).replace(traced=True, trace_capacity=args.capacity)
    print(f"tracing {config.name!r} ...", file=sys.stderr)
    result = run_scenario(config)
    trace = result.trace
    if args.kind:
        records = [r for r in trace.records() if r.kind in set(args.kind)]
    else:
        records = trace.records()
    if args.out == "-":
        dump_jsonl(records, sys.stdout)
    else:
        count = write_jsonl(records, args.out)
        print(f"wrote {count} records to {args.out}", file=sys.stderr)
    print(json.dumps(trace.summary(), indent=2), file=sys.stderr)
    return 0


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "trace":
        return trace_main(argv[1:])
    if argv and argv[0] == "sweep":
        return sweep_main(argv[1:])
    args = build_parser().parse_args(argv)
    config = paper_scenario(
        args.workload,
        high_load=args.high_load,
        dynamic=not args.static,
        scale=args.scale,
        duration=args.duration,
        seed=args.seed,
    ).replace(distribution=args.distribution)
    faults = _fault_config(args)
    if faults is not None:
        config = config.replace(faults=faults)
    print(f"running {config.name!r} ({args.distribution} distribution) ...")
    result = run_scenario(config)

    print()
    print(series_summary("bandwidth (byte-hops/min)", result.bandwidth.payload_series()))
    print(series_summary("mean latency (s)", result.latency.mean_latency_series()))
    rows = [
        ["requests serviced / dropped",
         f"{result.latency.completed} / {result.latency.dropped}"],
        ["bandwidth reduction", f"{result.bandwidth_reduction():.1%}"],
        ["per-request bandwidth reduction", f"{result.proximity_reduction():.1%}"],
        ["latency equilibrium", f"{result.latency_equilibrium():.3f} s"],
        ["replicas per object", f"{result.replicas_per_object():.2f}"],
        ["overhead (full-scale equiv.)",
         f"{result.overhead_fraction_fullscale():.2%}"],
        ["settled max load",
         f"{result.max_load_settled():.1f} req/s "
         f"(hw {config.protocol.high_watermark:g})"],
        ["relocations", f"{len(result.system.placement_events)}"],
    ]
    if result.system.fault_plane is not None:
        from repro.metrics.availability import fault_metrics

        faulty = fault_metrics(result.system, config.duration)
        rows.extend(
            [
                ["requests lost", f"{faulty['requests_lost']:.0f}"],
                ["rpc retries / timeouts",
                 f"{faulty['rpc_retries']:.0f} / {faulty['rpc_timeouts']:.0f}"],
                ["failure detections / recoveries",
                 f"{faulty.get('failure_detections', 0.0):.0f} / "
                 f"{faulty.get('failure_recoveries', 0.0):.0f}"],
                ["repairs", f"{faulty.get('repairs', 0.0):.0f}"],
                ["unavailability",
                 f"{faulty.get('unavailability_seconds', 0.0):.1f} s"],
            ]
        )
    print()
    print(format_table(["metric", "value"], rows))
    if args.json_out:
        metrics = scenario_metrics(result)
        with open(args.json_out, "w") as handle:
            json.dump(metrics, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote metrics to {args.json_out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
