"""Command-line interface: ``python -m repro <command>``.

One parser, seven subcommands:

``run``
    One paper scenario in the simulator, printing the evaluation
    summary.  For backwards compatibility, invoking ``python -m repro``
    with bare flags (no subcommand) means ``run``:

        python -m repro run --workload regional --scale 0.15 --duration 1800
        python -m repro run --workload zipf --loss 0.05 --outage 3:60:120
        python -m repro run --workload zipf --check-invariants --json run.json

``trace``
    A scenario with the decision tracer attached, emitting the
    structured protocol trace as JSONL (stdout by default):

        python -m repro trace --preset zipf > trace.jsonl

``sweep``
    A scenario x seed x parameter grid fanned out across worker
    processes, with aggregate statistics:

        python -m repro sweep --preset zipf --seeds 4 --workers 4
        python -m repro sweep --smoke --json bench_smoke.json   # the CI gate

``gap``
    The optimality-gap campaign: the same seeded workload replayed
    through the protocol and each selected baseline strategy, with the
    offline-optimal assignment cost of every run's own demand trace as
    the yardstick (``gap_ratio = protocol_cost / oracle_cost >= 1``):

        python -m repro gap --quick --out BENCH_optgap.json
        python -m repro gap --set gap.load_scale=0.5,1,2 \\
            --set gap.fault=none,600 --set gap.strategy=paper,static

``profile``
    One scenario run under ``cProfile`` with its wall time attributed
    to pipeline stages (request pipeline, event engine, workload
    generation, metrics, placement), plus honest unprofiled stage
    wall-clocks.  The tool behind the perf trajectory's numbers:

        python -m repro profile --large --duration 20 --json profile.json
        python -m repro profile --preset zipf --no-fast-lane

``serve``
    The live asyncio serving runtime — the same protocol over real
    sockets.  Runs a whole deployment in one process (optionally
    sharded: ``--shards N`` puts N redirector shards behind a gateway),
    or a single role (``redirector``, ``gateway``, ``shard``, ``host``)
    for multi-process deployments.  With ``--base-port 0`` every role
    binds an ephemeral port, publishes it via ``--port-file``, and
    registers with the front door given by ``--gateway``.  Exits
    cleanly on SIGINT/SIGTERM, exporting metrics (and the trace) on
    the way down:

        python -m repro serve --hosts 3 --metrics live.json
        python -m repro serve --shards 4 --hosts 3
        python -m repro serve --role shard --shard 1 --base-port 0 \\
            --gateway 127.0.0.1:8100 --port-file s1.port
        python -m repro serve --role host --node 1 --config live.json

``loadgen``
    The load generator that drives a live deployment through the
    redirector at a target open-loop request rate.  ``--processes``
    forks workers that split the load and merge latency histograms;
    ``--route-only`` measures the redirector tier alone; ``--direct``
    routes each request straight to the owning shard:

        python -m repro loadgen --workload zipf --rate 150 --requests 1000
        python -m repro loadgen --shards 4 --route-only --direct \\
            --processes 2 --rate 2000 --requests 20000
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys

from repro import __version__
from repro.metrics.report import format_table, series_summary
from repro.obs.export import dump_jsonl, write_jsonl
from repro.obs.records import RECORD_KINDS
from repro.obs.tracer import DEFAULT_CAPACITY
from repro.scenarios.presets import WORKLOAD_NAMES, paper_scenario
from repro.scenarios.runner import run_scenario, scenario_metrics
from repro.sweep import SweepSpec, default_workers, run_sweep, smoke_spec

COMMANDS = ("run", "trace", "sweep", "gap", "profile", "serve", "loadgen")


# ----------------------------------------------------------------------
# Shared option groups
# ----------------------------------------------------------------------


def _add_scenario_options(
    parser: argparse.ArgumentParser,
    *,
    workload_flag: str,
    default_duration: float,
    with_seed: bool = True,
) -> None:
    """The scenario axis shared by run/trace/sweep."""
    parser.add_argument(
        workload_flag,
        choices=[*WORKLOAD_NAMES, "uniform"],
        default="zipf",
        help="request pattern (default: zipf)",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=0.15,
        help="load-axis scale relative to Table 1 (default: 0.15)",
    )
    parser.add_argument(
        "--duration",
        type=float,
        default=default_duration,
        help=f"simulated seconds (default: {default_duration:g})",
    )
    if with_seed:
        parser.add_argument(
            "--seed", type=int, default=1, help="scenario seed (default: 1)"
        )
    parser.add_argument(
        "--high-load",
        action="store_true",
        help="use the Figure 9 watermarks (50/40 instead of 90/80)",
    )


def _add_fault_options(parser: argparse.ArgumentParser) -> None:
    faults = parser.add_argument_group(
        "fault injection",
        "any of these enables the unreliable-network fault plane",
    )
    faults.add_argument(
        "--loss",
        type=float,
        default=None,
        metavar="P",
        help="per-message drop probability in [0, 1)",
    )
    faults.add_argument(
        "--dup",
        type=float,
        default=None,
        metavar="P",
        help="per-message duplication probability in [0, 1)",
    )
    faults.add_argument(
        "--jitter",
        type=float,
        default=None,
        metavar="F",
        help="extra delay jitter as a fraction of the base delay",
    )
    faults.add_argument(
        "--mtbf",
        type=float,
        default=None,
        metavar="S",
        help="mean time between host failures (with --mttr: random outages)",
    )
    faults.add_argument(
        "--mttr",
        type=float,
        default=None,
        metavar="S",
        help="mean time to repair a failed host",
    )
    faults.add_argument(
        "--outage",
        action="append",
        default=None,
        metavar="NODE:AT:DUR",
        help="crash NODE at AT seconds for DUR seconds (repeatable)",
    )
    faults.add_argument(
        "--partition",
        action="append",
        default=None,
        metavar="NODES:AT:DUR",
        help="partition the comma-separated NODES from the rest at AT "
        "seconds for DUR seconds, e.g. 0,1,2:90:60 (repeatable)",
    )


def _add_consistency_options(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group(
        "consistency plane",
        "any of these enables Sec. 5 provider writes and repair loops",
    )
    group.add_argument(
        "--write-rate",
        type=float,
        default=None,
        metavar="R",
        help="provider updates per second across the whole system",
    )
    group.add_argument(
        "--category-mix",
        default=None,
        metavar="C1:C2:C3",
        help="object fractions per consistency category, e.g. 0.8:0.15:0.05",
    )
    group.add_argument(
        "--epidemic-interval",
        type=float,
        default=None,
        metavar="S",
        help="batch category-1 updates and flush every S seconds "
        "(default: propagate immediately)",
    )
    group.add_argument(
        "--anti-entropy-interval",
        type=float,
        default=None,
        metavar="S",
        help="digest-exchange repair round period in seconds",
    )


def _add_live_config_options(parser: argparse.ArgumentParser) -> None:
    """The live-deployment world model shared by serve/loadgen."""
    live = parser.add_argument_group(
        "live deployment",
        "--config JSON is the base; the flags override individual fields",
    )
    live.add_argument(
        "--config",
        default=None,
        metavar="PATH",
        help="LiveConfig JSON (shared across the deployment's processes)",
    )
    live.add_argument(
        "--hosts",
        dest="num_hosts",
        type=int,
        default=None,
        help="number of replica hosts (default: 3)",
    )
    live.add_argument(
        "--topology",
        choices=("line", "ring", "star"),
        default=None,
        help="backbone linking the hosts (default: ring)",
    )
    live.add_argument(
        "--objects",
        dest="num_objects",
        type=int,
        default=None,
        help="hosted object count (default: 24)",
    )
    live.add_argument(
        "--object-size",
        type=int,
        default=None,
        metavar="BYTES",
        help="bytes served per object request (default: 8192)",
    )
    live.add_argument(
        "--bind",
        dest="bind_host",
        default=None,
        metavar="HOST",
        help="listen/connect address (default: 127.0.0.1)",
    )
    live.add_argument(
        "--base-port",
        type=int,
        default=None,
        metavar="PORT",
        help="front-door port; 0 binds ephemeral ports everywhere "
        "(default: 8100)",
    )
    live.add_argument(
        "--shards",
        dest="num_shards",
        type=int,
        default=None,
        help="redirector shards partitioning the namespace (default: 1)",
    )
    live.add_argument(
        "--measurement-interval",
        type=float,
        default=None,
        metavar="S",
        help="load measurement interval in seconds (default: 1)",
    )
    live.add_argument(
        "--placement-interval",
        type=float,
        default=None,
        metavar="S",
        help="placement interval in seconds (default: 3)",
    )
    live.add_argument(
        "--high-watermark",
        type=float,
        default=None,
        metavar="RPS",
        help="offloading high watermark in requests/sec (default: 160)",
    )
    live.add_argument(
        "--low-watermark",
        type=float,
        default=None,
        metavar="RPS",
        help="offloading low watermark in requests/sec (default: 120)",
    )


def _live_config(args: argparse.Namespace):
    from repro.live.deploy import load_config

    return load_config(
        args.config,
        {
            "num_hosts": args.num_hosts,
            "topology": args.topology,
            "num_objects": args.num_objects,
            "object_size": args.object_size,
            "bind_host": args.bind_host,
            "base_port": args.base_port,
            "num_shards": args.num_shards,
            "measurement_interval": args.measurement_interval,
            "placement_interval": args.placement_interval,
            "high_watermark": args.high_watermark,
            "low_watermark": args.low_watermark,
        },
    )


# ----------------------------------------------------------------------
# Per-command parsers (standalone builders kept as the public API)
# ----------------------------------------------------------------------


def _populate_run_parser(parser: argparse.ArgumentParser) -> None:
    _add_scenario_options(
        parser, workload_flag="--workload", default_duration=1800.0
    )
    parser.add_argument(
        "--static",
        action="store_true",
        help="disable dynamic placement (the static baseline)",
    )
    parser.add_argument(
        "--strategy",
        default="paper",
        metavar="NAME",
        help="placement strategy from the baselines registry "
        "(default: paper; see repro.baselines.STRATEGIES)",
    )
    parser.add_argument(
        "--distribution",
        choices=["paper", "round-robin", "closest"],
        default="paper",
        help="request-distribution policy (default: paper)",
    )
    parser.add_argument(
        "--check-invariants",
        action="store_true",
        help="verify protocol invariants at the end of the run",
    )
    _add_fault_options(parser)
    _add_consistency_options(parser)
    parser.add_argument(
        "--json",
        dest="json_out",
        default=None,
        metavar="PATH",
        help="also write the run's scalar metrics as JSON here",
    )


def _populate_trace_parser(parser: argparse.ArgumentParser) -> None:
    _add_scenario_options(
        parser, workload_flag="--preset", default_duration=600.0
    )
    parser.add_argument(
        "--capacity",
        type=int,
        default=DEFAULT_CAPACITY,
        help=f"per-kind trace ring capacity (default: {DEFAULT_CAPACITY})",
    )
    parser.add_argument(
        "--kind",
        choices=list(RECORD_KINDS),
        action="append",
        default=None,
        help="emit only this record kind (repeatable; default: all)",
    )
    parser.add_argument(
        "--out",
        default="-",
        help="output path for the JSONL trace ('-' = stdout, the default)",
    )


def _populate_sweep_parser(parser: argparse.ArgumentParser) -> None:
    _add_scenario_options(
        parser, workload_flag="--preset", default_duration=600.0, with_seed=False
    )
    parser.add_argument(
        "--seeds",
        type=int,
        default=0,
        metavar="N",
        help="derive N seeds from --root-seed (default: the preset's seed)",
    )
    parser.add_argument(
        "--seed-list",
        default=None,
        metavar="S1,S2,...",
        help="explicit comma-separated seeds (overrides --seeds)",
    )
    parser.add_argument(
        "--root-seed",
        type=int,
        default=0,
        help="root seed for --seeds derivation (default: 0)",
    )
    parser.add_argument(
        "--set",
        dest="overrides",
        action="append",
        default=None,
        metavar="KEY=V1[,V2,...]",
        help=(
            "grid axis: dotted config key and comma-separated values, e.g. "
            "protocol.placement_interval=50,100 (repeatable; axes combine "
            "as a cartesian product)"
        ),
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes (default: REPRO_SWEEP_WORKERS or CPU count, max 8)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-run timeout in wall-clock seconds (workers > 1 only)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=1,
        help="retries for a run whose worker crashed (default: 1)",
    )
    parser.add_argument(
        "--manifest",
        default=None,
        metavar="PATH",
        help="write the JSONL run manifest here",
    )
    parser.add_argument(
        "--json",
        dest="json_out",
        default=None,
        metavar="PATH",
        help="write the aggregate sweep summary as JSON here",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=(
            "ignore scenario options and run the canonical CI smoke sweep "
            "(fixed spec shared with benchmarks/reports/baseline.json)"
        ),
    )


def _populate_gap_parser(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI-sized campaign (small tree + backbone slice, 2 strategies)",
    )
    parser.add_argument(
        "--out",
        default="BENCH_optgap.json",
        metavar="PATH",
        help="output JSON artifact ('-' = stdout; default: BENCH_optgap.json)",
    )
    parser.add_argument(
        "--set",
        dest="overrides",
        action="append",
        default=None,
        metavar="KEY=V1[,V2,...]",
        help=(
            "campaign axis or scalar: gap.topology / gap.load_scale / "
            "gap.fault / gap.strategy take comma-separated value lists "
            "(gap.fault accepts 'none' for fault-free); gap.seed / "
            "gap.workload / gap.duration / gap.objects / gap.rate / "
            "gap.capacity / gap.top_objects take one value (repeatable)"
        ),
    )


def _populate_serve_parser(parser: argparse.ArgumentParser) -> None:
    _add_live_config_options(parser)
    parser.add_argument(
        "--role",
        choices=("all", "redirector", "gateway", "shard", "host"),
        default="all",
        help="which role this process runs (default: all, single-process)",
    )
    parser.add_argument(
        "--node",
        type=int,
        default=None,
        help="host node id (required with --role host)",
    )
    parser.add_argument(
        "--shard",
        type=int,
        default=None,
        help="shard id (required with --role shard)",
    )
    parser.add_argument(
        "--gateway",
        default=None,
        metavar="HOST:PORT",
        help="front-door address to register with (ephemeral-port "
        "shard/host roles)",
    )
    parser.add_argument(
        "--port-file",
        default=None,
        metavar="PATH",
        help="write this process's bound port to PATH after binding "
        "(port-conflict-proof launches: use with --base-port 0)",
    )
    parser.add_argument(
        "--serve-duration",
        type=float,
        default=None,
        metavar="S",
        help="exit after S seconds instead of waiting for a signal",
    )
    parser.add_argument(
        "--metrics",
        dest="metrics_out",
        default=None,
        metavar="PATH",
        help="write the deployment metrics snapshot as JSON on shutdown",
    )
    parser.add_argument(
        "--trace",
        dest="trace_out",
        default=None,
        metavar="PATH",
        help="attach the decision tracer and write its JSONL on shutdown",
    )


def _populate_loadgen_parser(parser: argparse.ArgumentParser) -> None:
    _add_live_config_options(parser)
    parser.add_argument(
        "--workload",
        choices=("uniform", "zipf", "hot_sites", "regional"),
        default="zipf",
        help="request pattern to replay (default: zipf)",
    )
    parser.add_argument(
        "--rate",
        type=float,
        default=120.0,
        help="target request rate in requests/sec (default: 120)",
    )
    parser.add_argument(
        "--requests",
        type=int,
        default=1000,
        help="total requests to issue (default: 1000)",
    )
    parser.add_argument(
        "--seed", type=int, default=1, help="sampler seed (default: 1)"
    )
    parser.add_argument(
        "--phases",
        type=int,
        default=1,
        help="popularity phases (ids re-permuted per phase; default: 1)",
    )
    parser.add_argument(
        "--concurrency",
        type=int,
        default=64,
        help="max in-flight requests (default: 64)",
    )
    parser.add_argument(
        "--processes",
        type=int,
        default=1,
        help="loadgen worker processes; load and seeds split across them "
        "and latency histograms merge at the end (default: 1)",
    )
    parser.add_argument(
        "--route-only",
        action="store_true",
        help="measure the redirector tier alone: GET /route without the "
        "object fetch",
    )
    parser.add_argument(
        "--direct",
        action="store_true",
        help="partition-aware routing: discover shard endpoints from the "
        "front door and send each /route straight to the owning shard",
    )
    parser.add_argument(
        "--max-lag",
        dest="max_sched_lag",
        type=float,
        default=None,
        metavar="S",
        help="drop arrivals more than S seconds behind schedule instead "
        "of issuing them late (default: never drop, count late arrivals)",
    )
    parser.add_argument(
        "--redirector",
        default=None,
        metavar="HOST:PORT",
        help="front-door address (default: derived from the live config)",
    )
    parser.add_argument(
        "--json",
        dest="json_out",
        default=None,
        metavar="PATH",
        help="write the client-side metrics as JSON here",
    )


def build_parser() -> argparse.ArgumentParser:
    """The ``run`` subcommand's parser (standalone, legacy entry)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Run one scenario of the ICDCS 1999 dynamic replication "
            "protocol reproduction."
        ),
    )
    _populate_run_parser(parser)
    return parser


def build_trace_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro trace",
        description=(
            "Run one scenario with the protocol decision tracer attached "
            "and emit the trace as JSONL."
        ),
    )
    _populate_trace_parser(parser)
    return parser


def build_sweep_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro sweep",
        description=(
            "Run a scenario x seed x parameter-override sweep across "
            "worker processes and aggregate the metrics."
        ),
    )
    _populate_sweep_parser(parser)
    return parser


def build_cli() -> argparse.ArgumentParser:
    """The unified ``python -m repro`` parser with all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of the ICDCS 1999 dynamic object replication "
            "and migration protocol: simulator, sweeps, and a live "
            "serving runtime."
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)
    _populate_run_parser(
        sub.add_parser("run", help="run one simulated scenario")
    )
    _populate_trace_parser(
        sub.add_parser("trace", help="run a scenario and emit a JSONL decision trace")
    )
    _populate_sweep_parser(
        sub.add_parser("sweep", help="fan a scenario grid across worker processes")
    )
    _populate_gap_parser(
        sub.add_parser(
            "gap", help="measure the protocol's optimality gap against the oracle"
        )
    )
    _populate_profile_parser(
        sub.add_parser(
            "profile", help="attribute a scenario's wall time to pipeline stages"
        )
    )
    _populate_serve_parser(
        sub.add_parser("serve", help="run the live serving runtime over real sockets")
    )
    _populate_loadgen_parser(
        sub.add_parser("loadgen", help="drive load through a live deployment")
    )
    return parser


# ----------------------------------------------------------------------
# run
# ----------------------------------------------------------------------


def _parse_outage(text: str) -> tuple[int, float, float]:
    parts = text.split(":")
    if len(parts) != 3:
        raise SystemExit(f"bad --outage {text!r}; expected NODE:AT:DUR")
    try:
        return int(parts[0]), float(parts[1]), float(parts[2])
    except ValueError:
        raise SystemExit(f"bad --outage {text!r}; expected NODE:AT:DUR") from None


def _parse_partition(text: str) -> tuple[tuple[int, ...], float, float]:
    parts = text.split(":")
    if len(parts) != 3:
        raise SystemExit(f"bad --partition {text!r}; expected NODES:AT:DUR")
    try:
        nodes = tuple(int(node) for node in parts[0].split(","))
        return nodes, float(parts[1]), float(parts[2])
    except ValueError:
        raise SystemExit(
            f"bad --partition {text!r}; expected NODES:AT:DUR"
        ) from None


def _fault_config(args: argparse.Namespace):
    """A FaultConfig from CLI flags, or None when none were given."""
    flags = (
        args.loss,
        args.dup,
        args.jitter,
        args.mtbf,
        args.mttr,
        args.outage,
        args.partition,
    )
    if all(value is None for value in flags):
        return None
    if (args.mtbf is None) != (args.mttr is None):
        raise SystemExit("--mtbf and --mttr must be given together")
    from repro.network.faults import FaultConfig

    return FaultConfig(
        enabled=True,
        drop_prob=args.loss or 0.0,
        duplicate_prob=args.dup or 0.0,
        delay_jitter=args.jitter or 0.0,
        mtbf=args.mtbf,
        mttr=args.mttr,
        outages=tuple(_parse_outage(o) for o in args.outage or ()),
        partitions=tuple(_parse_partition(p) for p in args.partition or ()),
    )


def _consistency_config(args: argparse.Namespace):
    """A ConsistencyConfig from CLI flags, or None when none were given."""
    flags = (
        args.write_rate,
        args.category_mix,
        args.epidemic_interval,
        args.anti_entropy_interval,
    )
    if all(value is None for value in flags):
        return None
    from repro.consistency.config import ConsistencyConfig

    return ConsistencyConfig(
        write_rate=args.write_rate or 0.0,
        category_mix=args.category_mix or (1.0, 0.0, 0.0),
        epidemic_interval=args.epidemic_interval,
        anti_entropy_interval=args.anti_entropy_interval,
    )


def run_main(args: argparse.Namespace) -> int:
    config = paper_scenario(
        args.workload,
        high_load=args.high_load,
        dynamic=not args.static,
        scale=args.scale,
        duration=args.duration,
        seed=args.seed,
    ).replace(
        distribution=args.distribution,
        strategy=args.strategy,
        check_invariants=args.check_invariants,
    )
    faults = _fault_config(args)
    if faults is not None:
        config = config.replace(faults=faults)
    consistency = _consistency_config(args)
    if consistency is not None:
        config = config.replace(consistency=consistency)
    print(f"running {config.name!r} ({args.distribution} distribution) ...")
    result = run_scenario(config)

    print()
    print(series_summary("bandwidth (byte-hops/min)", result.bandwidth.payload_series()))
    print(series_summary("mean latency (s)", result.latency.mean_latency_series()))
    rows = [
        ["requests serviced / dropped",
         f"{result.latency.completed} / {result.latency.dropped}"],
        ["bandwidth reduction", f"{result.bandwidth_reduction():.1%}"],
        ["per-request bandwidth reduction", f"{result.proximity_reduction():.1%}"],
        ["latency equilibrium", f"{result.latency_equilibrium():.3f} s"],
        ["replicas per object", f"{result.replicas_per_object():.2f}"],
        ["overhead (full-scale equiv.)",
         f"{result.overhead_fraction_fullscale():.2%}"],
        ["settled max load",
         f"{result.max_load_settled():.1f} req/s "
         f"(hw {config.protocol.high_watermark:g})"],
        ["relocations", f"{len(result.system.placement_events)}"],
    ]
    if result.system.fault_plane is not None:
        from repro.metrics.availability import fault_metrics

        faulty = fault_metrics(result.system, config.duration)
        rows.extend(
            [
                ["requests lost", f"{faulty['requests_lost']:.0f}"],
                ["rpc retries / timeouts",
                 f"{faulty['rpc_retries']:.0f} / {faulty['rpc_timeouts']:.0f}"],
                ["failure detections / recoveries",
                 f"{faulty.get('failure_detections', 0.0):.0f} / "
                 f"{faulty.get('failure_recoveries', 0.0):.0f}"],
                ["repairs", f"{faulty.get('repairs', 0.0):.0f}"],
                ["unavailability",
                 f"{faulty.get('unavailability_seconds', 0.0):.1f} s"],
            ]
        )
    if result.system.consistency_plane is not None:
        from repro.metrics.staleness import staleness_metrics

        stale = staleness_metrics(result.system, config.duration)
        rows.extend(
            [
                ["writes applied / propagated",
                 f"{stale['writes_applied']:.0f} / "
                 f"{stale['updates_propagated']:.0f}"],
                ["stale reads",
                 f"{stale['stale_reads']:.0f} "
                 f"({stale['stale_read_fraction']:.2%} of reads)"],
                ["divergence windows / max",
                 f"{stale['divergence_windows_opened']:.0f} / "
                 f"{stale['divergence_window_max_seconds']:.1f} s"],
                ["read repairs",
                 f"{stale['read_repairs']:.0f} of "
                 f"{stale['read_repair_attempts']:.0f} attempts"],
                ["anti-entropy repushes",
                 f"{stale.get('anti_entropy_repushes', 0.0):.0f}"],
            ]
        )
    print()
    print(format_table(["metric", "value"], rows))
    if args.json_out:
        metrics = scenario_metrics(result)
        with open(args.json_out, "w") as handle:
            json.dump(metrics, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote metrics to {args.json_out}")
    return 0


# ----------------------------------------------------------------------
# trace
# ----------------------------------------------------------------------


def trace_main(args: argparse.Namespace) -> int:
    config = paper_scenario(
        args.preset,
        high_load=args.high_load,
        scale=args.scale,
        duration=args.duration,
        seed=args.seed,
    ).replace(traced=True, trace_capacity=args.capacity)
    print(f"tracing {config.name!r} ...", file=sys.stderr)
    result = run_scenario(config)
    trace = result.trace
    if args.kind:
        records = [r for r in trace.records() if r.kind in set(args.kind)]
    else:
        records = trace.records()
    if args.out == "-":
        dump_jsonl(records, sys.stdout)
    else:
        count = write_jsonl(records, args.out)
        print(f"wrote {count} records to {args.out}", file=sys.stderr)
    print(json.dumps(trace.summary(), indent=2), file=sys.stderr)
    return 0


# ----------------------------------------------------------------------
# sweep
# ----------------------------------------------------------------------


def _parse_override_value(text: str):
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            continue
    if text in ("true", "false"):
        return text == "true"
    return text


def _parse_axes(pairs: list[str] | None) -> dict[str, list]:
    axes: dict[str, list] = {}
    for pair in pairs or []:
        key, sep, values = pair.partition("=")
        if not sep or not key:
            raise SystemExit(f"bad --set {pair!r}; expected KEY=V1[,V2,...]")
        axes[key] = [
            _parse_override_value(v) for v in values.split(",") if v != ""
        ]
    return axes


def sweep_main(args: argparse.Namespace) -> int:
    if args.smoke:
        spec = smoke_spec()
    else:
        base = paper_scenario(
            args.preset,
            high_load=args.high_load,
            scale=args.scale,
            duration=args.duration,
        )
        seeds: tuple[int, ...] = ()
        if args.seed_list:
            seeds = tuple(int(s) for s in args.seed_list.split(","))
        spec = SweepSpec.grid(
            base,
            _parse_axes(args.overrides),
            seeds=seeds,
            num_seeds=0 if seeds else args.seeds,
            root_seed=args.root_seed,
            name=f"{args.preset}-sweep",
        )
    workers = args.workers if args.workers is not None else default_workers()
    runs = spec.runs()
    print(
        f"sweep {spec.name!r}: {len(runs)} runs "
        f"({len(spec.points)} points x {len(spec.resolved_seeds())} seeds), "
        f"{workers} worker(s), spec {spec.spec_hash()}",
        file=sys.stderr,
    )
    result = run_sweep(
        spec,
        workers=workers,
        timeout=args.timeout,
        retries=args.retries,
        manifest_path=args.manifest,
    )
    for point, metrics in result.aggregate().items():
        rows = [
            [name, f"{s.mean:.4g}", f"{s.stdev:.3g}", f"{s.ci95:.3g}"]
            for name, s in metrics.items()
        ]
        print(f"\n[{point}]")
        print(format_table(["metric", "mean", "stdev", "95% CI"], rows))
    print(
        f"\n{len(result.ok_records)}/{len(result.records)} runs ok in "
        f"{result.wall_time_s:.1f}s wall "
        f"({result.throughput():.0f} serviced requests/s)"
    )
    for failure in result.failures:
        print(
            f"FAILED run {failure.index} ({failure.point}/seed={failure.seed}): "
            f"{failure.status}: {failure.error}",
            file=sys.stderr,
        )
    if args.json_out:
        with open(args.json_out, "w") as handle:
            json.dump(result.summary(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote summary to {args.json_out}", file=sys.stderr)
    if args.manifest:
        print(f"wrote manifest to {args.manifest}", file=sys.stderr)
    return 0 if not result.failures else 1


# ----------------------------------------------------------------------
# gap
# ----------------------------------------------------------------------

#: ``--set`` keys that fan out a campaign axis (value lists allowed).
_GAP_AXES = {
    "gap.topology": "topologies",
    "gap.load_scale": "load_scales",
    "gap.fault": "fault_mtbfs",
    "gap.strategy": "strategies",
}

#: ``--set`` keys that replace one scalar campaign setting.
_GAP_SCALARS = {
    "gap.seed": "seed",
    "gap.workload": "workload",
    "gap.duration": "duration",
    "gap.objects": "num_objects",
    "gap.rate": "node_request_rate",
    "gap.capacity": "capacity",
    "gap.top_objects": "top_objects",
}


def _gap_settings(args: argparse.Namespace):
    import dataclasses

    from repro.optimal.gap import GapSettings, quick_settings

    settings = quick_settings() if args.quick else GapSettings()
    changes: dict[str, object] = {}
    for key, values in _parse_axes(args.overrides).items():
        if key in _GAP_AXES:
            if key == "gap.fault":
                parsed = tuple(
                    None if v in ("none", "off", 0) else float(v) for v in values
                )
            elif key == "gap.load_scale":
                parsed = tuple(float(v) for v in values)
            else:
                parsed = tuple(str(v) for v in values)
            changes[_GAP_AXES[key]] = parsed
        elif key in _GAP_SCALARS:
            if len(values) != 1:
                raise SystemExit(f"--set {key} takes exactly one value")
            changes[_GAP_SCALARS[key]] = values[0]
        else:
            known = ", ".join(sorted([*_GAP_AXES, *_GAP_SCALARS]))
            raise SystemExit(f"unknown --set key {key!r}; known: {known}")
    if changes:
        settings = dataclasses.replace(settings, **changes)
    return settings


def gap_main(args: argparse.Namespace) -> int:
    from repro.optimal.gap import run_gap_benchmark

    settings = _gap_settings(args)

    def progress(topology: str, load: float, mtbf, strategy: str) -> None:
        print(
            f"  {topology} load={load:g} mtbf={mtbf} strategy={strategy}",
            file=sys.stderr,
            flush=True,
        )

    total = (
        len(settings.topologies)
        * len(settings.load_scales)
        * len(settings.fault_mtbfs)
        * len(settings.strategies)
    )
    print(f"gap campaign: {total} points ...", file=sys.stderr)
    payload = run_gap_benchmark(settings, progress=progress)
    text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    if args.out == "-":
        sys.stdout.write(text)
    else:
        with open(args.out, "w") as handle:
            handle.write(text)
        print(f"wrote {len(payload['points'])} gap points to {args.out}")
    worst = max(payload["points"], key=lambda p: p["gap_ratio"])
    print(
        f"worst gap: {worst['gap_ratio']:.4f} ({worst['topology']}, "
        f"load={worst['load_scale']:g}, mtbf={worst['fault_mtbf']}, "
        f"{worst['strategy']})",
        file=sys.stderr,
    )
    bad = [p for p in payload["points"] if p["gap_ratio"] < 1.0 - 1e-9]
    if bad:
        print(
            f"ERROR: {len(bad)} point(s) below 1.0 — the oracle is not a "
            "lower bound",
            file=sys.stderr,
        )
        return 1
    return 0


# ----------------------------------------------------------------------
# serve / loadgen (the live runtime)
# ----------------------------------------------------------------------


def _parse_hostport(value: str, flag: str) -> tuple[str, int]:
    host, sep, port = value.rpartition(":")
    if not sep:
        raise SystemExit(f"{flag} must be HOST:PORT")
    return host, int(port)


def serve_main(args: argparse.Namespace) -> int:
    from repro.live.deploy import (
        serve_all,
        serve_gateway,
        serve_host,
        serve_redirector,
        serve_shard,
    )

    config = _live_config(args)
    gateway = (
        _parse_hostport(args.gateway, "--gateway") if args.gateway else None
    )
    if args.role == "all":
        coroutine = serve_all(
            config,
            metrics_path=args.metrics_out,
            trace_path=args.trace_out,
            duration=args.serve_duration,
            port_file=args.port_file,
        )
    elif args.role == "redirector":
        coroutine = serve_redirector(
            config, metrics_path=args.metrics_out, port_file=args.port_file
        )
    elif args.role == "gateway":
        coroutine = serve_gateway(
            config, metrics_path=args.metrics_out, port_file=args.port_file
        )
    elif args.role == "shard":
        if args.shard is None:
            raise SystemExit("--role shard needs --shard")
        coroutine = serve_shard(
            config,
            args.shard,
            gateway=gateway,
            metrics_path=args.metrics_out,
            port_file=args.port_file,
        )
    else:
        if args.node is None:
            raise SystemExit("--role host needs --node")
        coroutine = serve_host(
            config,
            args.node,
            gateway=gateway,
            metrics_path=args.metrics_out,
            port_file=args.port_file,
        )
    asyncio.run(coroutine)
    return 0


def loadgen_main(args: argparse.Namespace) -> int:
    from repro.live.loadgen import (
        LoadgenOptions,
        run_loadgen,
        run_loadgen_multiprocess,
    )
    from repro.live.metrics import format_live_summary

    config = _live_config(args)
    if args.redirector:
        redirector = _parse_hostport(args.redirector, "--redirector")
    else:
        redirector = config.redirector_address()
        if redirector[1] == 0:
            raise SystemExit(
                "ephemeral-port config: pass --redirector HOST:PORT"
            )
    shard_endpoints = None
    if args.direct:
        from repro.live.client import http_json

        reply = http_json(redirector, "GET", "/admin/endpoints")
        shard_endpoints = {
            int(shard): (str(address[0]), int(address[1]))
            for shard, address in (reply.get("shards") or {}).items()
        }
        if not shard_endpoints:
            raise SystemExit(
                "--direct: the front door reports no shard endpoints"
            )
    options = LoadgenOptions(
        workload=args.workload,
        rate=args.rate,
        requests=args.requests,
        seed=args.seed,
        phases=args.phases,
        concurrency=args.concurrency,
        route_only=args.route_only,
        max_sched_lag=args.max_sched_lag,
        shard_endpoints=shard_endpoints,
    )

    def progress(done: int, total: int) -> None:
        print(f"  {done}/{total} requests issued", file=sys.stderr)

    if args.processes > 1:
        stats = run_loadgen_multiprocess(
            redirector, config, options, processes=args.processes
        )
    else:
        stats = asyncio.run(
            run_loadgen(redirector, config, options, on_progress=progress)
        )
    summary = stats.summary()
    print(format_live_summary(summary))
    if args.json_out:
        with open(args.json_out, "w") as handle:
            json.dump(summary, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote metrics to {args.json_out}", file=sys.stderr)
    return 0 if stats.completed > 0 and stats.failed == 0 else 1


# ----------------------------------------------------------------------
# profile
# ----------------------------------------------------------------------


def _populate_profile_parser(parser: argparse.ArgumentParser) -> None:
    _add_scenario_options(
        parser, workload_flag="--preset", default_duration=120.0
    )
    parser.add_argument(
        "--large",
        action="store_true",
        help="profile the 500-host / 100k-object large-topology preset "
        "instead of the UUNET paper scenario",
    )
    parser.add_argument(
        "--no-fast-lane",
        action="store_true",
        help="force every request through the reference pipeline",
    )
    parser.add_argument(
        "--top",
        type=int,
        default=25,
        metavar="N",
        help="how many functions to list by cumulative time (default: 25)",
    )
    parser.add_argument(
        "--json",
        dest="json_out",
        default=None,
        metavar="PATH",
        help="write the full stage breakdown as JSON here",
    )


def profile_main(args: argparse.Namespace) -> int:
    from repro.obs.profile import profile_scenario, stage_walltimes

    topology = None
    if args.large:
        from repro.scenarios.presets import large_topology_scenario

        config, topology = large_topology_scenario(
            duration=args.duration, seed=args.seed, scale=args.scale
        )
    else:
        config = paper_scenario(
            workload=args.preset,
            scale=args.scale,
            duration=args.duration,
            seed=args.seed,
            high_load=args.high_load,
        )
    if args.no_fast_lane:
        config = config.replace(fast_lane=False)

    print(f"profiling {config.name} ({config.duration:g}s simulated)...")
    walls = stage_walltimes(config, topology=topology)
    breakdown = profile_scenario(config, topology=topology, top=args.top)
    breakdown["stage_walltimes"] = walls

    print(
        f"wall (unprofiled): build {walls['build_s']}s + "
        f"drain ~{walls['drain_estimate_s']}s = {walls['run_s']}s "
        f"-> {walls['requests_per_sec']:,.0f} req/s"
    )
    counters = breakdown["counters"]
    print(
        f"requests: {counters['requests_completed']} completed "
        f"({counters['requests_fast_lane']} fast lane, "
        f"{counters['requests_reference_path']} reference path), "
        f"{counters['requests_dropped']} dropped"
    )
    print("\nprofiled time by pipeline stage (cProfile, inflated but mapped):")
    total = breakdown["profiled_seconds_total"] or 1.0
    for bucket, seconds in breakdown["stage_seconds"].items():
        print(f"  {bucket:24s} {seconds:8.3f}s  {seconds / total:6.1%}")
    print(f"\ntop functions by cumulative time (top {args.top}):")
    for entry in breakdown["top_functions"][:10]:
        print(
            f"  {entry['cumtime_s']:8.3f}s  {entry['calls']:>9} calls  "
            f"{entry['function']}"
        )
    if args.json_out:
        with open(args.json_out, "w") as handle:
            json.dump(breakdown, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"\nwrote stage breakdown to {args.json_out}")
    return 0


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------

_COMMAND_MAINS = {
    "run": run_main,
    "trace": trace_main,
    "sweep": sweep_main,
    "gap": gap_main,
    "profile": profile_main,
    "serve": serve_main,
    "loadgen": loadgen_main,
}


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    # Legacy compatibility: bare flags (or nothing) mean `run`.
    if not argv:
        argv = ["run"]
    elif argv[0] not in COMMANDS and argv[0] not in (
        "-h", "--help", "--version",
    ):
        argv = ["run", *argv]
    args = build_cli().parse_args(argv)
    return _COMMAND_MAINS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
