"""Command-line interface: ``python -m repro``.

Runs one paper scenario and prints the evaluation summary — the same
metrics the benchmark harness reports, for ad-hoc exploration:

    python -m repro --workload regional --scale 0.15 --duration 1800
    python -m repro --workload zipf --high-load --distribution closest

The ``trace`` subcommand runs a scenario with the decision tracer
attached and emits the structured protocol trace as JSONL (stdout by
default; the run summary goes to stderr):

    python -m repro trace --preset zipf > trace.jsonl
    python -m repro trace --preset regional --kind placement --out p.jsonl
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.metrics.report import format_table, series_summary
from repro.obs.export import dump_jsonl, write_jsonl
from repro.obs.records import RECORD_KINDS
from repro.obs.tracer import DEFAULT_CAPACITY
from repro.scenarios.presets import WORKLOAD_NAMES, paper_scenario
from repro.scenarios.runner import run_scenario


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Run one scenario of the ICDCS 1999 dynamic replication "
            "protocol reproduction."
        ),
    )
    parser.add_argument(
        "--workload",
        choices=[*WORKLOAD_NAMES, "uniform"],
        default="zipf",
        help="request pattern (default: zipf)",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=0.15,
        help="load-axis scale relative to Table 1 (default: 0.15)",
    )
    parser.add_argument(
        "--duration",
        type=float,
        default=1800.0,
        help="simulated seconds (default: 1800)",
    )
    parser.add_argument(
        "--seed", type=int, default=1, help="scenario seed (default: 1)"
    )
    parser.add_argument(
        "--high-load",
        action="store_true",
        help="use the Figure 9 watermarks (50/40 instead of 90/80)",
    )
    parser.add_argument(
        "--static",
        action="store_true",
        help="disable dynamic placement (the static baseline)",
    )
    parser.add_argument(
        "--distribution",
        choices=["paper", "round-robin", "closest"],
        default="paper",
        help="request-distribution policy (default: paper)",
    )
    return parser


def build_trace_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro trace",
        description=(
            "Run one scenario with the protocol decision tracer attached "
            "and emit the trace as JSONL."
        ),
    )
    parser.add_argument(
        "--preset",
        choices=[*WORKLOAD_NAMES, "uniform"],
        default="zipf",
        help="workload preset to trace (default: zipf)",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=0.15,
        help="load-axis scale relative to Table 1 (default: 0.15)",
    )
    parser.add_argument(
        "--duration",
        type=float,
        default=600.0,
        help="simulated seconds (default: 600)",
    )
    parser.add_argument(
        "--seed", type=int, default=1, help="scenario seed (default: 1)"
    )
    parser.add_argument(
        "--high-load",
        action="store_true",
        help="use the Figure 9 watermarks (50/40 instead of 90/80)",
    )
    parser.add_argument(
        "--capacity",
        type=int,
        default=DEFAULT_CAPACITY,
        help=f"per-kind trace ring capacity (default: {DEFAULT_CAPACITY})",
    )
    parser.add_argument(
        "--kind",
        choices=list(RECORD_KINDS),
        action="append",
        default=None,
        help="emit only this record kind (repeatable; default: all)",
    )
    parser.add_argument(
        "--out",
        default="-",
        help="output path for the JSONL trace ('-' = stdout, the default)",
    )
    return parser


def trace_main(argv: list[str]) -> int:
    args = build_trace_parser().parse_args(argv)
    config = paper_scenario(
        args.preset,
        high_load=args.high_load,
        scale=args.scale,
        duration=args.duration,
        seed=args.seed,
    ).replace(traced=True, trace_capacity=args.capacity)
    print(f"tracing {config.name!r} ...", file=sys.stderr)
    result = run_scenario(config)
    trace = result.trace
    if args.kind:
        records = [r for r in trace.records() if r.kind in set(args.kind)]
    else:
        records = trace.records()
    if args.out == "-":
        dump_jsonl(records, sys.stdout)
    else:
        count = write_jsonl(records, args.out)
        print(f"wrote {count} records to {args.out}", file=sys.stderr)
    print(json.dumps(trace.summary(), indent=2), file=sys.stderr)
    return 0


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "trace":
        return trace_main(argv[1:])
    args = build_parser().parse_args(argv)
    config = paper_scenario(
        args.workload,
        high_load=args.high_load,
        dynamic=not args.static,
        scale=args.scale,
        duration=args.duration,
        seed=args.seed,
    ).replace(distribution=args.distribution)
    print(f"running {config.name!r} ({args.distribution} distribution) ...")
    result = run_scenario(config)

    print()
    print(series_summary("bandwidth (byte-hops/min)", result.bandwidth.payload_series()))
    print(series_summary("mean latency (s)", result.latency.mean_latency_series()))
    rows = [
        ["requests serviced / dropped",
         f"{result.latency.completed} / {result.latency.dropped}"],
        ["bandwidth reduction", f"{result.bandwidth_reduction():.1%}"],
        ["per-request bandwidth reduction", f"{result.proximity_reduction():.1%}"],
        ["latency equilibrium", f"{result.latency_equilibrium():.3f} s"],
        ["replicas per object", f"{result.replicas_per_object():.2f}"],
        ["overhead (full-scale equiv.)",
         f"{result.overhead_fraction_fullscale():.2%}"],
        ["settled max load",
         f"{result.max_load_settled():.1f} req/s "
         f"(hw {config.protocol.high_watermark:g})"],
        ["relocations", f"{len(result.system.placement_events)}"],
    ]
    print()
    print(format_table(["metric", "value"], rows))
    return 0


if __name__ == "__main__":
    sys.exit(main())
