"""Commuting-statistics merging (Section 5, category-2 objects).

Category-2 objects are those whose only per-access modification is
"collecting access statistics or other commuting updates".  They remain
replicable under the paper's protocol "if a mechanism is provided for
merging access statistics recorded by different replicas" — this module
is that mechanism: per-replica counters are kept locally and merged by
addition, which is correct precisely because the updates commute.

If the application serves the statistics *in* the content and requires
them always current, the object degrades to category 3 (the policy layer
handles that distinction).
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Mapping

from repro.types import NodeId, ObjectId


class CountingStats:
    """Per-replica access counters for one category-2 object."""

    __slots__ = ("obj", "_counts")

    def __init__(self, obj: ObjectId) -> None:
        self.obj = obj
        self._counts: Counter[NodeId] = Counter()

    def record_access(self, replica_host: NodeId, count: int = 1) -> None:
        """A replica recorded ``count`` accesses locally."""
        if count < 0:
            raise ValueError(f"access count must be non-negative, got {count}")
        self._counts[replica_host] += count

    def local_count(self, replica_host: NodeId) -> int:
        return self._counts[replica_host]

    def merged_total(self) -> int:
        """The globally merged access count (sum over replicas)."""
        return sum(self._counts.values())

    def snapshot(self) -> dict[NodeId, int]:
        return dict(self._counts)

    def transfer(self, source: NodeId, target: NodeId) -> None:
        """Fold ``source``'s counter into ``target`` (replica dropped).

        The merged total is invariant under transfers — the property the
        paper's category-2 replicability rests on.
        """
        if source == target:
            return
        self._counts[target] += self._counts.pop(source, 0)


def merge_counts(
    partials: Iterable[Mapping[NodeId, int]],
) -> dict[NodeId, int]:
    """Merge several per-replica counter snapshots by addition."""
    merged: Counter[NodeId] = Counter()
    for partial in partials:
        for host, count in partial.items():
            if count < 0:
                raise ValueError(f"negative count {count} for host {host}")
            merged[host] += count
    return dict(merged)
