"""The consistency plane: Sec. 5 machinery wired into a running system.

This module is the integration seam the fault-hardening work needed: it
owns the primary-copy manager, the optional epidemic batcher and
anti-entropy daemon, the staleness bookkeeping, and the category-2/3
policy state, and it hangs off ``HostingSystem.consistency_plane`` the
same way the fault plane hangs off ``system.fault_plane``.

Responsibilities:

* **Writes** — :meth:`provider_write` applies a content-provider update
  at the object's primary and either propagates immediately (over the
  faulted RPC layer) or marks the object dirty for the next epidemic
  flush.

* **Staleness accounting** — the manager's version hooks keep a
  :class:`~repro.metrics.staleness.StalenessTracker` current, and a
  request observer checks every served request against the stale set
  (the redirector/host seam: a stale serve *is* a stale read).

* **Read-repair** — a detected stale serve schedules an immediate
  catch-up push, unless the object sits inside an epidemic flush window
  (reads there are expected stale; repairing them would defeat the
  batching) or a previous repair attempt against that replica failed
  (suppressed until anti-entropy or recovery clears it, so a partition
  does not trigger a repair storm).

* **Crash / recovery** — injector crash observers drop the crashed
  primary's queued epidemic propagation and its unmerged category-2
  counters (both are lost state, surfaced as metrics); detector
  recovery triggers a targeted anti-entropy sync and a category-2
  re-aggregation whose conservation invariant
  (``merged + pending + lost == served``) is checked on every pass.

* **Category policy** — with a non-trivial category mix, objects are
  classified once up front from a dedicated RNG stream and the
  resulting :class:`~repro.consistency.categories.ConsistencyPolicy`
  is installed as ``system.consistency_policy``, so CreateObj refuses
  category-3 replication past the limit exactly as before.
"""

from __future__ import annotations

import random
from collections import Counter

from repro.consistency.antientropy import AntiEntropyDaemon
from repro.consistency.categories import Category, ConsistencyPolicy
from repro.consistency.config import ConsistencyConfig
from repro.consistency.epidemic import EpidemicBatcher
from repro.consistency.merge import CountingStats, merge_counts
from repro.consistency.primary_copy import PrimaryCopyManager
from repro.core.protocol import HostingSystem
from repro.errors import ConsistencyError
from repro.metrics.staleness import StalenessTracker
from repro.obs.records import StaleReadRecord, UpdateRecord
from repro.sim.process import PeriodicProcess
from repro.types import NodeId, ObjectId, RequestRecord, Time


class ConsistencyPlane:
    """Owns and coordinates the Sec. 5 machinery for one system."""

    def __init__(
        self,
        system: HostingSystem,
        config: ConsistencyConfig,
        *,
        rng: random.Random,
    ) -> None:
        self._system = system
        self.config = config
        self.tracker = StalenessTracker()
        self.policy = ConsistencyPolicy(
            non_commuting_replica_limit=config.non_commuting_replica_limit
        )
        system.consistency_policy = self.policy
        #: Per-object counters for category-2 objects.
        self._stats: dict[ObjectId, CountingStats] = {}
        c1, c2, _ = config.category_mix
        if config.category_mix != (1.0, 0.0, 0.0):
            for obj in range(system.num_objects):
                draw = rng.random()
                if draw < c1:
                    continue  # STATIC is the policy default.
                if draw < c1 + c2:
                    self.policy.classify(obj, Category.COMMUTING)
                    self._stats[obj] = CountingStats(obj)
                else:
                    self.policy.classify(obj, Category.NON_COMMUTING)
        self.manager = PrimaryCopyManager(
            system, immediate=config.epidemic_interval is None
        )
        self.manager.on_version = self._on_version
        self.manager.on_drop = self._on_drop
        self.batcher: EpidemicBatcher | None = None
        self.antientropy: AntiEntropyDaemon | None = None
        self._merge_process: PeriodicProcess | None = None
        #: Category-2 tallies recorded but not yet merged at the board,
        #: keyed by serving host (lost wholesale if the host crashes).
        self._pending: dict[NodeId, Counter[ObjectId]] = {}
        #: (obj, host) pairs whose read-repair failed; suppressed until
        #: anti-entropy or host recovery clears them.
        self._repair_suppressed: set[tuple[ObjectId, NodeId]] = set()
        #: Provider writes accepted.
        self.writes = 0
        self.read_repair_attempts = 0
        self.read_repairs = 0
        #: Dirty objects whose queued epidemic propagation died with a
        #: crashed primary.
        self.epidemic_pending_lost = 0
        self.category2_served = 0
        self.category2_merges = 0
        self.category2_counts_lost = 0
        self.category2_reaggregations = 0
        #: Hosts that completed cold recovery while the plane was live.
        self.cold_recoveries = 0
        self._started = False
        self._stopped = False
        system.request_observers.append(self._on_request)
        system.crash_observers.append(self._on_host_lifecycle)

    @property
    def system(self) -> HostingSystem:
        return self._system

    @property
    def has_category2(self) -> bool:
        return bool(self._stats)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        if self._started:
            raise ConsistencyError("consistency plane already started")
        self._started = True
        system = self._system
        config = self.config
        if config.epidemic_interval is not None:
            self.batcher = EpidemicBatcher(
                system.sim, self.manager, period=config.epidemic_interval
            )
        if config.anti_entropy_interval is not None:
            self.antientropy = AntiEntropyDaemon(
                system, interval=config.anti_entropy_interval
            )
            self.antientropy.start()
        if self._stats:
            # Category-2 counters ship to the board on the measurement
            # cadence, like load reports.
            self._merge_process = PeriodicProcess(
                system.sim,
                system.config.measurement_interval,
                self._merge_tick,
            )

    def stop(self) -> None:
        if self._stopped or not self._started:
            self._stopped = True
            return
        self._stopped = True
        if self.batcher is not None:
            self.batcher.stop()
        if self.antientropy is not None:
            self.antientropy.stop()
        if self._merge_process is not None:
            self._merge_process.stop()
            self._merge_tick(self._system.clock.now)

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------

    def provider_write(self, obj: ObjectId, *, size: int | None = None) -> int:
        """A content provider updates ``obj``; returns the new version."""
        manager = self.manager
        before = manager.updates_propagated
        version = manager.apply_update(obj, size=size)
        pending = self.batcher is not None
        if pending:
            self.batcher.mark_dirty(obj)
        self.writes += 1
        tracer = self._system.tracer
        if tracer is not None:
            tracer.record(
                UpdateRecord(
                    obj=obj,
                    primary=manager.primary(obj),
                    version=version,
                    propagated=manager.updates_propagated - before,
                    pending=pending,
                )
            )
        return version

    # ------------------------------------------------------------------
    # Staleness bookkeeping (manager hooks)
    # ------------------------------------------------------------------

    def _on_version(self, obj: ObjectId, host: NodeId, version: int) -> None:
        self._recheck(obj)

    def _on_drop(self, obj: ObjectId, host: NodeId) -> None:
        self._repair_suppressed.discard((obj, host))
        self._recheck(obj)

    def _recheck(self, obj: ObjectId) -> None:
        """Recompute ``obj``'s stale set and update window bookkeeping."""
        manager = self.manager
        target = manager.primary_version(obj)
        stale: set[NodeId] = set()
        if target > 0:
            primary = manager.primary(obj)
            for host in self._system.redirectors.for_object(obj).replica_hosts(obj):
                if host == primary:
                    continue
                if manager.version_or_default(obj, host) < target:
                    stale.add(host)
        self.tracker.set_stale_set(obj, stale, self._system.clock.now)

    def unsuppress(self, obj: ObjectId, host: NodeId) -> None:
        """Anti-entropy reconciled the pair; allow read-repair again."""
        self._repair_suppressed.discard((obj, host))

    # ------------------------------------------------------------------
    # Reads (request observer)
    # ------------------------------------------------------------------

    def _on_request(self, record: RequestRecord) -> None:
        if record.server < 0 or record.dropped or record.failed or record.lost:
            return
        obj = record.obj
        server = record.server
        now = self._system.clock.now
        if obj in self._stats:
            # Category-2: the serve is itself a commuting update,
            # tallied locally and merged to the board later.
            self.category2_served += 1
            self._pending.setdefault(server, Counter())[obj] += 1
        stale = self.tracker.note_read(obj, server, now)
        if not stale:
            return
        repaired = False
        if self.config.read_repair:
            repaired = self._read_repair(obj, server, now)
        tracer = self._system.tracer
        if tracer is not None:
            tracer.record(
                StaleReadRecord(
                    obj=obj,
                    server=server,
                    version=self.manager.version_or_default(obj, server),
                    primary_version=self.manager.primary_version(obj),
                    repaired=repaired,
                )
            )

    def _read_repair(self, obj: ObjectId, server: NodeId, now: Time) -> bool:
        if (obj, server) in self._repair_suppressed:
            return False
        if (
            self.batcher is not None
            and self.tracker.window_age(obj, now) <= self.batcher.period
        ):
            # Inside the epidemic flush window staleness is by design;
            # repairing here would defeat the batching.
            return False
        self.read_repair_attempts += 1
        if self.manager.repush(obj, server):
            self.read_repairs += 1
            return True
        # The push failed (partition, crash, bad luck): stop retrying on
        # every read until anti-entropy or recovery clears the pair.
        self._repair_suppressed.add((obj, server))
        return False

    # ------------------------------------------------------------------
    # Category-2 merging
    # ------------------------------------------------------------------

    def _merge_tick(self, now: Time) -> None:
        """Ship each host's unmerged tallies to the board's stats."""
        system = self._system
        for node in sorted(self._pending):
            counter = self._pending[node]
            if not counter:
                continue
            if not system.hosts[node].available:
                # A crashed host cannot report; its tallies stay pending
                # (and die with the host if it crashes again) until it
                # recovers and reports normally.
                continue
            delivered = system.rpc.oneway(
                node, system.board_node, system.control_bytes
            )
            if not delivered:
                continue  # Stays pending; retried next tick.
            for obj in sorted(counter):
                self._stats[obj].record_access(node, counter[obj])
            self.category2_merges += 1
            counter.clear()

    def category2_merged_total(self) -> int:
        return sum(stats.merged_total() for stats in self._stats.values())

    def _reaggregate(self) -> None:
        """Re-merge all counter snapshots and check conservation.

        ``merged + pending + lost == served`` must hold after any crash
        and recovery — commuting merges make the merged part insensitive
        to ordering, and the pending/lost split accounts for exactly the
        tallies that have not (or will never) arrive.
        """
        merged = 0
        for obj in sorted(self._stats):
            merged += sum(merge_counts([self._stats[obj].snapshot()]).values())
        pending = sum(
            sum(counter.values()) for counter in self._pending.values()
        )
        if merged + pending + self.category2_counts_lost != self.category2_served:
            raise ConsistencyError(
                "category-2 conservation violated: "
                f"{merged} merged + {pending} pending + "
                f"{self.category2_counts_lost} lost != "
                f"{self.category2_served} served"
            )
        self.category2_reaggregations += 1

    # ------------------------------------------------------------------
    # Crash / recovery seams
    # ------------------------------------------------------------------

    def _on_host_lifecycle(self, node: NodeId, crashed: bool, now: Time) -> None:
        if crashed:
            if self.batcher is not None:
                self.epidemic_pending_lost += self.batcher.drop_host(node)
            pending = self._pending.pop(node, None)
            if pending:
                self.category2_counts_lost += sum(pending.values())
            return
        # Cold recovery: the host rejoined with its stored replicas; the
        # versions it serves were rebuilt from stable store at crash
        # time, so recheck staleness for everything it holds.
        self.cold_recoveries += 1
        for obj in sorted(self._system.hosts[node].store.objects()):
            self._recheck(obj)
        self._clear_suppressions(node)
        if self._stats:
            self._reaggregate()

    def on_host_marked_up(self, node: NodeId, now: Time) -> None:
        """The failure detector declared ``node`` reachable again.

        Fires both for real crash recovery and for partition healing
        (heartbeats resuming), so this is the hook that closes
        divergence windows promptly: clear repair suppressions and run
        a targeted anti-entropy sync.
        """
        self._clear_suppressions(node)
        if self.antientropy is not None:
            self.antientropy.sync_host(node, now)

    def _clear_suppressions(self, node: NodeId) -> None:
        stale = [
            pair
            for pair in self._repair_suppressed
            if pair[1] == node or self.manager.primary(pair[0]) == node
        ]
        for pair in stale:
            self._repair_suppressed.discard(pair)
