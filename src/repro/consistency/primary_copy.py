"""Primary-copy update propagation (Section 5, category-1 objects).

"Consistency of these updates can be maintained by using the primary copy
approach, with the node hosting the original copy of the object acting as
the primary.  Depending on the needs of the application, updates can
propagate from the primary asynchronously to the rest of currently
existing replicas either immediately or in batches using epidemic
mechanisms.  These objects can be replicated or migrated freely, provided
the location of the primary copy is tracked by the object's redirector."

:class:`PrimaryCopyManager` tracks each object's primary (following it
through migrations), applies content-provider updates at the primary,
and propagates them to the currently registered replica set — either
immediately or batched through an :class:`~repro.consistency.epidemic.
EpidemicBatcher` — charging the update bytes to the backbone.  Versions
are monotone counters; replicas converge to the primary's version once
propagation reaches them (plus, for fresh copies, at CreateObj time,
since the copied bytes are by definition current).
"""

from __future__ import annotations

from repro.core.protocol import HostingSystem
from repro.errors import ConsistencyError
from repro.network.message import MessageClass
from repro.types import NodeId, ObjectId


class PrimaryCopyManager:
    """Tracks primaries and propagates asynchronous updates."""

    def __init__(
        self,
        system: HostingSystem,
        *,
        immediate: bool = True,
    ) -> None:
        self._system = system
        self._immediate = immediate
        self._primary: dict[ObjectId, NodeId] = {}
        self._versions: dict[tuple[ObjectId, NodeId], int] = {}
        self._primary_version: dict[ObjectId, int] = {}
        #: Updates applied at primaries (provider writes).
        self.updates_applied = 0
        #: Update messages propagated to replicas.
        self.updates_propagated = 0
        for service in system.redirectors.services:
            service.add_observer(self._on_replica_change)

    # ------------------------------------------------------------------
    # Replica-set tracking
    # ------------------------------------------------------------------

    def _on_replica_change(
        self,
        obj: ObjectId,
        host: NodeId,
        affinity: int,
        created: bool,
        dropped: bool,
    ) -> None:
        if created:
            if obj not in self._primary:
                # First registration: the original copy is the primary.
                self._primary[obj] = host
                self._primary_version[obj] = 0
            # A fresh copy carries the current content.
            self._versions[(obj, host)] = self._primary_version[obj]
        elif dropped:
            self._versions.pop((obj, host), None)
            if self._primary.get(obj) == host:
                # The primary migrated away; re-home it on a surviving
                # replica (the redirector guarantees one exists).
                survivors = self._system.redirectors.for_object(obj).replica_hosts(obj)
                if not survivors:
                    raise ConsistencyError(
                        f"object {obj} lost its last replica"
                    )  # pragma: no cover - redirector prevents this
                self._primary[obj] = min(survivors)

    def primary(self, obj: ObjectId) -> NodeId:
        try:
            return self._primary[obj]
        except KeyError:
            raise ConsistencyError(f"object {obj} has no tracked primary") from None

    def version(self, obj: ObjectId, host: NodeId) -> int:
        """The content version replica ``(obj, host)`` currently serves."""
        try:
            return self._versions[(obj, host)]
        except KeyError:
            raise ConsistencyError(f"no replica of {obj} on host {host}") from None

    def primary_version(self, obj: ObjectId) -> int:
        return self._primary_version.get(obj, 0)

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def apply_update(self, obj: ObjectId, *, size: int | None = None) -> int:
        """A content provider updates ``obj`` at its primary.

        Returns the new version.  With immediate propagation the update
        is pushed to every currently registered replica now; otherwise
        the caller is expected to flush via an epidemic batcher.
        """
        primary = self.primary(obj)
        version = self._primary_version.get(obj, 0) + 1
        self._primary_version[obj] = version
        self._versions[(obj, primary)] = version
        self.updates_applied += 1
        if self._immediate:
            self.propagate(obj, size=size)
        return version

    def propagate(self, obj: ObjectId, *, size: int | None = None) -> int:
        """Push the primary's version to all stale replicas.

        Returns the number of replicas refreshed.  Update bytes (the full
        object by default) are charged as UPDATE traffic from the primary
        to each stale replica.
        """
        primary = self.primary(obj)
        target_version = self._primary_version.get(obj, 0)
        payload = self._system.object_size if size is None else size
        refreshed = 0
        for host in self._system.redirectors.for_object(obj).replica_hosts(obj):
            if host == primary:
                continue
            if self._versions.get((obj, host), 0) < target_version:
                self._system.network.account(
                    primary, host, payload, MessageClass.UPDATE
                )
                self._versions[(obj, host)] = target_version
                refreshed += 1
                self.updates_propagated += 1
        return refreshed

    def stale_replicas(self, obj: ObjectId) -> list[NodeId]:
        """Replicas currently serving an older version than the primary."""
        target = self._primary_version.get(obj, 0)
        return [
            host
            for host in self._system.redirectors.for_object(obj).replica_hosts(obj)
            if self._versions.get((obj, host), 0) < target
        ]
