"""Primary-copy update propagation (Section 5, category-1 objects).

"Consistency of these updates can be maintained by using the primary copy
approach, with the node hosting the original copy of the object acting as
the primary.  Depending on the needs of the application, updates can
propagate from the primary asynchronously to the rest of currently
existing replicas either immediately or in batches using epidemic
mechanisms.  These objects can be replicated or migrated freely, provided
the location of the primary copy is tracked by the object's redirector."

:class:`PrimaryCopyManager` tracks each object's primary (following it
through migrations), applies content-provider updates at the primary,
and propagates them to the currently registered replica set — either
immediately or batched through an :class:`~repro.consistency.epidemic.
EpidemicBatcher`.  Versions are monotone counters; replicas converge to
the primary's version once propagation reaches them (plus, for fresh
copies, at CreateObj time, since the copied bytes are by definition
current — the provider publishes to the service's stable store as well
as the primary, so copies and repair-restored replicas carry current
content).

Propagation rides :meth:`repro.network.rpc.RpcLayer.update_push`: with
no fault plane that is exactly the one ``Network.account`` UPDATE charge
per stale replica this module always made (byte-identical fault-free
behaviour), while under a fault plane every push contends with drops,
duplication, jitter, partitions and crashed hosts — a failed push leaves
the replica stale, its version untouched, for the anti-entropy daemon or
read-repair to reconcile later.
"""

from __future__ import annotations

from typing import Callable

from repro.core.protocol import HostingSystem
from repro.errors import ConsistencyError
from repro.types import NodeId, ObjectId

#: Hook signature: (obj, host, version) after a replica's version is set.
VersionObserver = Callable[[ObjectId, NodeId, int], None]
#: Hook signature: (obj, host) after a replica's version is discarded.
DropObserver = Callable[[ObjectId, NodeId], None]


class PrimaryCopyManager:
    """Tracks primaries and propagates asynchronous updates."""

    def __init__(
        self,
        system: HostingSystem,
        *,
        immediate: bool = True,
    ) -> None:
        self._system = system
        self._immediate = immediate
        self._primary: dict[ObjectId, NodeId] = {}
        self._versions: dict[tuple[ObjectId, NodeId], int] = {}
        self._primary_version: dict[ObjectId, int] = {}
        #: Updates applied at primaries (provider writes).
        self.updates_applied = 0
        #: Update messages propagated to replicas.
        self.updates_propagated = 0
        #: Pushes that failed within the retry budget (replica left stale).
        self.update_push_failures = 0
        #: Observers fired on version changes / replica-version drops
        #: (the consistency plane's staleness bookkeeping hangs here).
        self.on_version: VersionObserver | None = None
        self.on_drop: DropObserver | None = None
        for service in system.redirectors.services:
            service.add_observer(self._on_replica_change)

    # ------------------------------------------------------------------
    # Replica-set tracking
    # ------------------------------------------------------------------

    def _on_replica_change(
        self,
        obj: ObjectId,
        host: NodeId,
        affinity: int,
        created: bool,
        dropped: bool,
    ) -> None:
        if created:
            if obj not in self._primary:
                # First registration: the original copy is the primary.
                self._primary[obj] = host
                self._primary_version[obj] = 0
            # A fresh copy carries the current content.
            self._set_version(obj, host, self._primary_version[obj])
        elif dropped:
            self._versions.pop((obj, host), None)
            if self._primary.get(obj) == host:
                # The primary migrated away; re-home it on a surviving
                # replica (the redirector guarantees one exists).
                survivors = self._system.redirectors.for_object(obj).replica_hosts(obj)
                if not survivors:
                    raise ConsistencyError(
                        f"object {obj} lost its last replica"
                    )  # pragma: no cover - redirector prevents this
                self._primary[obj] = min(survivors)
            if self.on_drop is not None:
                self.on_drop(obj, host)

    def _set_version(self, obj: ObjectId, host: NodeId, version: int) -> None:
        self._versions[(obj, host)] = version
        if self.on_version is not None:
            self.on_version(obj, host, version)

    def primary(self, obj: ObjectId) -> NodeId:
        try:
            return self._primary[obj]
        except KeyError:
            raise ConsistencyError(f"object {obj} has no tracked primary") from None

    def version(self, obj: ObjectId, host: NodeId) -> int:
        """The content version replica ``(obj, host)`` currently serves."""
        try:
            return self._versions[(obj, host)]
        except KeyError:
            raise ConsistencyError(f"no replica of {obj} on host {host}") from None

    def version_or_default(self, obj: ObjectId, host: NodeId) -> int:
        """Like :meth:`version` but 0 for an untracked replica."""
        return self._versions.get((obj, host), 0)

    def primary_version(self, obj: ObjectId) -> int:
        return self._primary_version.get(obj, 0)

    def written_objects(self) -> list[ObjectId]:
        """Objects whose primary has applied at least one update, sorted.

        The anti-entropy working set: objects still at version 0 cannot
        have divergent replicas (fresh copies are current by definition).
        """
        return sorted(
            obj for obj, version in self._primary_version.items() if version > 0
        )

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def apply_update(self, obj: ObjectId, *, size: int | None = None) -> int:
        """A content provider updates ``obj`` at its primary.

        Returns the new version.  With immediate propagation the update
        is pushed to every currently registered replica now; otherwise
        the caller is expected to flush via an epidemic batcher.
        """
        primary = self.primary(obj)
        version = self._primary_version.get(obj, 0) + 1
        self._primary_version[obj] = version
        self._set_version(obj, primary, version)
        self.updates_applied += 1
        if self._immediate:
            self.propagate(obj, size=size)
        return version

    def repush(self, obj: ObjectId, host: NodeId, *, size: int | None = None) -> bool:
        """Push the primary's current version to one replica.

        Returns whether the replica was refreshed.  A no-op (``False``)
        for the primary itself and for replicas already current.  The
        update bytes (the full object by default) ride the RPC layer's
        ``update_push`` channel; under a fault plane a push from a
        crashed primary — or one that exhausts the retry budget — fails
        and the replica's version stays where it was.
        """
        primary = self.primary(obj)
        if host == primary:
            return False
        target_version = self._primary_version.get(obj, 0)
        if self._versions.get((obj, host), 0) >= target_version:
            return False
        system = self._system
        if system.fault_plane is not None and not system.hosts[primary].available:
            # A crashed primary pushes nothing.  (Fault-free runs keep
            # the legacy oracle semantics: propagation always succeeds.)
            self.update_push_failures += 1
            return False
        payload = system.object_size if size is None else size
        applied = system.rpc.update_push(
            primary,
            host,
            payload,
            ack_bytes=system.control_bytes,
            target_alive=system.hosts[host].available,
        )
        if not applied:
            self.update_push_failures += 1
            return False
        self._set_version(obj, host, target_version)
        self.updates_propagated += 1
        return True

    def propagate(self, obj: ObjectId, *, size: int | None = None) -> int:
        """Push the primary's version to all stale replicas.

        Returns the number of replicas refreshed; failed pushes are
        counted on :attr:`update_push_failures` and leave their replica
        stale.
        """
        refreshed = 0
        for host in self._system.redirectors.for_object(obj).replica_hosts(obj):
            if self.repush(obj, host, size=size):
                refreshed += 1
        return refreshed

    def stale_replicas(self, obj: ObjectId) -> list[NodeId]:
        """Replicas currently serving an older version than the primary."""
        target = self._primary_version.get(obj, 0)
        return [
            host
            for host in self._system.redirectors.for_object(obj).replica_hosts(obj)
            if self._versions.get((obj, host), 0) < target
        ]
