"""Anti-entropy repair: periodic digest exchange and targeted re-push.

The repair loop the paper's asynchronous update model implies (and Sec. 5
cites via Demers et al.'s epidemic work): propagation is best-effort
under faults, so a background daemon must eventually reconcile whatever
drops, partitions, and crashes left divergent.  Each round the daemon
walks every written object's (primary, replica) pairs, exchanges a
version digest — one entry per object the pair shares — over the faulted
RPC layer, and re-pushes only the objects the digest shows behind.

Digests are small (:data:`DIGEST_ENTRY_BYTES` per object plus the
control-message floor) so the overhead of a quiescent system stays
bounded; the expensive full-object pushes happen only for actual
divergence.  A digest exchange that itself fails (partitioned or crashed
replica) is counted and retried next round — anti-entropy never gives
up, which is what closes divergence windows after a partition heals.

:meth:`AntiEntropyDaemon.sync_host` is the targeted variant the failure
detector triggers when it marks a host back *up*: one immediate pass over
just that host's pairs, so recovery does not wait out a full period.
"""

from __future__ import annotations

from repro.core.protocol import HostingSystem
from repro.errors import ConsistencyError
from repro.obs.records import AntiEntropyRecord
from repro.sim.process import PeriodicProcess
from repro.types import NodeId, ObjectId, Time

#: Bytes per (object id, version) digest entry.
DIGEST_ENTRY_BYTES = 12


class AntiEntropyDaemon:
    """Periodically reconciles replicas against their primaries."""

    def __init__(self, system: HostingSystem, *, interval: Time) -> None:
        if interval <= 0:
            raise ConsistencyError(
                f"anti-entropy interval must be positive, got {interval}"
            )
        self._system = system
        self.interval = interval
        self._process: PeriodicProcess | None = None
        #: Periodic rounds performed.
        self.rounds = 0
        #: Pairwise digest round trips attempted.
        self.digest_exchanges = 0
        #: Digest round trips that failed (retried next round).
        self.digest_failures = 0
        #: Divergent objects successfully re-pushed.
        self.repushes = 0
        #: Digest traffic (both directions) in bytes.
        self.digest_bytes = 0
        #: Full-object re-push traffic in bytes.
        self.repush_bytes = 0
        #: Targeted syncs triggered by host recovery.
        self.cold_syncs = 0

    def start(self) -> None:
        if self._process is not None:
            raise ConsistencyError("anti-entropy daemon already started")
        self._process = PeriodicProcess(
            self._system.sim, self.interval, self._tick
        )

    def stop(self) -> None:
        if self._process is not None:
            self._process.stop()
            self._process = None

    # ------------------------------------------------------------------
    # Rounds
    # ------------------------------------------------------------------

    def _pairs(
        self, only_replica: NodeId | None = None
    ) -> dict[tuple[NodeId, NodeId], list[ObjectId]]:
        """(primary, replica) pairs over the written working set.

        Objects still at version 0 are skipped: a fresh copy is current
        by definition, so they cannot diverge and would only pad the
        digests.
        """
        system = self._system
        manager = system.consistency_plane.manager
        pairs: dict[tuple[NodeId, NodeId], list[ObjectId]] = {}
        for obj in manager.written_objects():
            primary = manager.primary(obj)
            for host in system.redirectors.for_object(obj).replica_hosts(obj):
                if host == primary:
                    continue
                if only_replica is not None and host != only_replica:
                    continue
                pairs.setdefault((primary, host), []).append(obj)
        return pairs

    def _tick(self, now: Time) -> None:
        self.rounds += 1
        self._sync(self._pairs(), now)

    def sync_host(self, node: NodeId, now: Time) -> None:
        """Immediately reconcile every pair involving replica ``node``.

        Triggered by the failure detector marking the host back up, so a
        recovered (or partition-healed) replica converges without
        waiting for the next periodic round.
        """
        self.cold_syncs += 1
        self._sync(self._pairs(only_replica=node), now)

    def _sync(
        self,
        pairs: dict[tuple[NodeId, NodeId], list[ObjectId]],
        now: Time,
    ) -> None:
        system = self._system
        plane = system.consistency_plane
        manager = plane.manager
        for (primary, replica), objs in sorted(pairs.items()):
            if not system.hosts[primary].available:
                # A crashed primary cannot answer digests; the pair
                # waits for recovery.
                continue
            digest = system.control_bytes + DIGEST_ENTRY_BYTES * len(objs)
            outcome = system.rpc.call(
                primary,
                replica,
                request_bytes=digest,
                response_bytes=digest,
                target_alive=system.hosts[replica].available,
            )
            self.digest_exchanges += 1
            self.digest_bytes += 2 * digest
            if not outcome.ok:
                self.digest_failures += 1
                self._trace(primary, replica, len(objs), 0, 0, ok=False)
                continue
            divergent = 0
            repushed = 0
            for obj in objs:
                if manager.version_or_default(
                    obj, replica
                ) >= manager.primary_version(obj):
                    continue
                divergent += 1
                if manager.repush(obj, replica):
                    repushed += 1
                    self.repush_bytes += system.object_size
                plane.unsuppress(obj, replica)
            self.repushes += repushed
            if divergent:
                self._trace(primary, replica, len(objs), divergent, repushed)

    def _trace(
        self,
        primary: NodeId,
        replica: NodeId,
        objects: int,
        divergent: int,
        repushed: int,
        *,
        ok: bool = True,
    ) -> None:
        tracer = self._system.tracer
        if tracer is not None:
            tracer.record(
                AntiEntropyRecord(
                    primary=primary,
                    replica=replica,
                    objects=objects,
                    divergent=divergent,
                    repushed=repushed,
                    ok=ok,
                )
            )
