"""Scenario-level configuration for the Sec. 5 consistency plane.

A :class:`ConsistencyConfig` rides inside
:class:`~repro.scenarios.config.ScenarioConfig` and controls whether a
scenario runs provider writes over the (possibly faulted) RPC layer,
how objects are split across the paper's three update categories, and
which repair machinery (epidemic batching, anti-entropy, read-repair)
is active.  The all-defaults instance means "consistency plane off" —
scenarios built before this module existed are unaffected, and the
sweep spec hash drops the block entirely when it is at defaults.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import Any

from repro.errors import ConfigurationError
from repro.types import Time


@dataclass(frozen=True, slots=True)
class ConsistencyConfig:
    """Knobs for the write path and its repair loops.

    ``category_mix`` is the probability split ``(category1, category2,
    category3)`` objects are assigned to (paper Sec. 5: primary-copy /
    commuting statistics / non-commuting).  It accepts a ``"a:b:c"``
    string for CLI and sweep-override ergonomics (colons, because the
    sweep CLI splits ``--set`` values on commas).
    """

    #: Provider update rate (writes/sec across the whole system).
    #: 0.0 disables the write workload.
    write_rate: float = 0.0
    #: Fraction of objects in categories 1/2/3.  Must sum to 1.
    category_mix: tuple[float, float, float] = (1.0, 0.0, 0.0)
    #: Epidemic flush period for category-1 updates; ``None`` (or ``0``,
    #: for sweep axes) means immediate propagation.
    epidemic_interval: Time | None = None
    #: Anti-entropy digest-exchange period; ``None`` (or ``0``) disables
    #: the daemon.
    anti_entropy_interval: Time | None = None
    #: Repair a detected stale serve immediately (subject to the
    #: epidemic window — reads inside the flush period are expected
    #: stale and not repaired).
    read_repair: bool = True
    #: Replica cap for category-3 (non-commuting) objects.
    non_commuting_replica_limit: int = 1

    def __post_init__(self) -> None:
        mix: Any = self.category_mix
        if isinstance(mix, str):
            parts = mix.split(":")
            if len(parts) != 3:
                raise ConfigurationError(
                    f"category mix must be 'c1:c2:c3', got {mix!r}"
                )
            try:
                mix = tuple(float(part) for part in parts)
            except ValueError:
                raise ConfigurationError(
                    f"category mix must be numeric, got {mix!r}"
                ) from None
        else:
            mix = tuple(float(part) for part in mix)
        if len(mix) != 3:
            raise ConfigurationError(
                f"category mix needs exactly 3 entries, got {self.category_mix!r}"
            )
        if any(part < 0 for part in mix):
            raise ConfigurationError(
                f"category mix entries must be non-negative, got {mix!r}"
            )
        if not math.isclose(sum(mix), 1.0, rel_tol=0.0, abs_tol=1e-9):
            raise ConfigurationError(
                f"category mix must sum to 1, got {mix!r}"
            )
        object.__setattr__(self, "category_mix", mix)
        if self.write_rate < 0:
            raise ConfigurationError(
                f"write rate must be non-negative, got {self.write_rate}"
            )
        # 0 means "off" (immediate propagation / no daemon) — the sweep
        # CLI cannot spell None, so interval axes use 0 for that point.
        for field in ("epidemic_interval", "anti_entropy_interval"):
            value = getattr(self, field)
            if value == 0:
                object.__setattr__(self, field, None)
            elif value is not None and value < 0:
                raise ConfigurationError(
                    f"{field.replace('_', ' ')} must be non-negative, "
                    f"got {value}"
                )
        if self.non_commuting_replica_limit < 1:
            raise ConfigurationError(
                "non-commuting replica limit must be at least 1, got "
                f"{self.non_commuting_replica_limit}"
            )

    @property
    def enabled(self) -> bool:
        """Whether this configuration activates the consistency plane."""
        return (
            self.write_rate > 0
            or self.category_mix != (1.0, 0.0, 0.0)
            or self.epidemic_interval is not None
            or self.anti_entropy_interval is not None
        )

    def replace(self, **changes: Any) -> ConsistencyConfig:
        """Return a copy with ``changes`` applied (re-validated)."""
        return dataclasses.replace(self, **changes)


__all__ = ["ConsistencyConfig"]
