"""Object consistency categories and per-category replication limits.

Section 5: category-1 objects replicate freely under primary-copy
consistency; category-2 objects replicate if statistics merging is
provided; category-3 objects either stay migrate-only (replica limit 1)
or, when the application tolerates inconsistency, keep a bounded replica
set ("the protocol itself remains the same, with the additional
restriction that the total number of replicas remain within the limit").

:class:`ConsistencyPolicy` is consulted by the hosting system's CreateObj
path: replication requests that would exceed an object's replica limit
are refused before any bytes move.
"""

from __future__ import annotations

import enum

from repro.errors import ConsistencyError
from repro.types import ObjectId


class Category(enum.Enum):
    """Section 5's three object categories."""

    #: No per-access modification; primary-copy + async propagation.
    STATIC = 1
    #: Commuting per-access updates (counters); replicable with merging.
    COMMUTING = 2
    #: Non-commuting per-access updates; migrate-only or bounded replicas.
    NON_COMMUTING = 3


class ConsistencyPolicy:
    """Classifies objects and enforces per-category replica limits."""

    def __init__(
        self,
        *,
        default_category: Category = Category.STATIC,
        non_commuting_replica_limit: int = 1,
    ) -> None:
        if non_commuting_replica_limit < 1:
            raise ConsistencyError("replica limit must be at least 1")
        self._default = default_category
        self._categories: dict[ObjectId, Category] = {}
        self._limits: dict[ObjectId, int] = {}
        #: Replica cap applied to category-3 objects without an explicit
        #: per-object limit.  1 means migrate-only, the paper's default.
        self.non_commuting_replica_limit = non_commuting_replica_limit

    def classify(
        self, obj: ObjectId, category: Category, *, replica_limit: int | None = None
    ) -> None:
        """Assign a category (and optional replica limit) to an object.

        A ``replica_limit`` is only meaningful for category-3 objects
        ("it may still be beneficial to create a limited number of
        replicas"); supplying one for other categories is an error.
        """
        if replica_limit is not None:
            if category is not Category.NON_COMMUTING:
                raise ConsistencyError(
                    "replica limits only apply to NON_COMMUTING objects"
                )
            if replica_limit < 1:
                raise ConsistencyError("replica limit must be at least 1")
            self._limits[obj] = replica_limit
        self._categories[obj] = category

    def category(self, obj: ObjectId) -> Category:
        return self._categories.get(obj, self._default)

    def replica_limit(self, obj: ObjectId) -> int | None:
        """Maximum replicas allowed, or ``None`` for unlimited."""
        category = self.category(obj)
        if category is Category.NON_COMMUTING:
            return self._limits.get(obj, self.non_commuting_replica_limit)
        return None

    def may_replicate(self, obj: ObjectId, current_replicas: int) -> bool:
        """Whether creating one more replica of ``obj`` is permitted."""
        limit = self.replica_limit(obj)
        return limit is None or current_replicas < limit

    def may_migrate(self, obj: ObjectId) -> bool:
        """Migration never increases the replica count; always allowed."""
        return True
