"""Replica consistency (Section 5 of the paper).

The paper divides hosted objects into three categories:

1. Objects that do not change as a result of user accesses (static pages,
   read-only dynamic services).  Consistency uses the **primary-copy**
   approach: the node hosting the original copy is the primary; provider
   updates propagate asynchronously to the current replica set, either
   immediately or in batches via epidemic mechanisms.  80–95% of Web
   accesses hit this category.
2. Objects whose only per-access modification is commuting (access
   counters, statistics).  Replicable if per-replica statistics can be
   **merged**.
3. Objects with non-commuting per-access updates.  In general these can
   only be migrated; if the application tolerates bounded inconsistency,
   a **limited number** of replicas may be kept.

This package implements all three behaviours on top of the core
protocol: :class:`~repro.consistency.categories.ConsistencyPolicy`
classifies objects and enforces replication limits,
:class:`~repro.consistency.primary_copy.PrimaryCopyManager` tracks
primaries and propagates updates (immediate or epidemic-batched, with
update traffic charged to the backbone), and
:mod:`~repro.consistency.merge` provides commuting-statistics merging.
"""

from repro.consistency.antientropy import AntiEntropyDaemon
from repro.consistency.categories import Category, ConsistencyPolicy
from repro.consistency.config import ConsistencyConfig
from repro.consistency.epidemic import EpidemicBatcher
from repro.consistency.merge import CountingStats, merge_counts
from repro.consistency.plane import ConsistencyPlane
from repro.consistency.primary_copy import PrimaryCopyManager

__all__ = [
    "Category",
    "ConsistencyConfig",
    "ConsistencyPlane",
    "ConsistencyPolicy",
    "PrimaryCopyManager",
    "EpidemicBatcher",
    "AntiEntropyDaemon",
    "CountingStats",
    "merge_counts",
]
