"""Batched (epidemic-style) update propagation.

Section 5 allows updates to propagate "either immediately or in batches
using epidemic mechanisms" (citing Demers et al.'s anti-entropy work).
:class:`EpidemicBatcher` accumulates dirty objects and flushes them on a
fixed period, amortising propagation cost for write-heavy providers at
the price of a bounded staleness window (one flush period).
"""

from __future__ import annotations

from repro.consistency.primary_copy import PrimaryCopyManager
from repro.errors import ConsistencyError
from repro.sim.engine import Simulator
from repro.sim.process import PeriodicProcess
from repro.types import ObjectId, Time


class EpidemicBatcher:
    """Periodically flushes pending updates through a primary-copy manager."""

    def __init__(
        self,
        sim: Simulator,
        manager: PrimaryCopyManager,
        *,
        period: float = 60.0,
    ) -> None:
        if period <= 0:
            raise ConsistencyError(f"flush period must be positive, got {period}")
        self._manager = manager
        self._dirty: set[ObjectId] = set()
        self.period = period
        self.flushes = 0
        self._process = PeriodicProcess(sim, period, self._flush)

    @property
    def pending(self) -> int:
        """Objects with updates awaiting the next flush."""
        return len(self._dirty)

    def mark_dirty(self, obj: ObjectId) -> None:
        """Record that ``obj`` was updated and needs propagation."""
        self._dirty.add(obj)

    def _flush(self, now: Time) -> None:
        for obj in sorted(self._dirty):
            self._manager.propagate(obj)
        self._dirty.clear()
        self.flushes += 1

    def flush_now(self) -> None:
        """Force an immediate flush outside the periodic schedule."""
        self._flush(0.0)

    def stop(self) -> None:
        self._process.stop()
