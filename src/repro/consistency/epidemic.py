"""Batched (epidemic-style) update propagation.

Section 5 allows updates to propagate "either immediately or in batches
using epidemic mechanisms" (citing Demers et al.'s anti-entropy work).
:class:`EpidemicBatcher` accumulates dirty objects and flushes them on a
fixed period, amortising propagation cost for write-heavy providers at
the price of a bounded staleness window (one flush period).

Dirty objects are bucketed by the primary that will push them, which is
what makes the batcher crash-aware: when a host crashes, the propagation
queued at it is lost with the crash (:meth:`drop_host`, wired to the
injector's crash observers by the consistency plane), leaving replicas
divergent until anti-entropy or read-repair reconciles them.  The
updates themselves survive — versions are never rolled back — only the
queued pushes die.

Lifecycle: :meth:`stop` flushes whatever is still pending (a clean
shutdown does not silently drop queued updates) and is idempotent, as is
:meth:`flush_now` after stop.  Marking new objects dirty on a stopped
batcher is a programming error and raises
:class:`~repro.errors.ConsistencyError`.
"""

from __future__ import annotations

from repro.consistency.primary_copy import PrimaryCopyManager
from repro.errors import ConsistencyError
from repro.sim.engine import Simulator
from repro.sim.process import PeriodicProcess
from repro.types import NodeId, ObjectId, Time


class EpidemicBatcher:
    """Periodically flushes pending updates through a primary-copy manager."""

    def __init__(
        self,
        sim: Simulator,
        manager: PrimaryCopyManager,
        *,
        period: float = 60.0,
    ) -> None:
        if period <= 0:
            raise ConsistencyError(f"flush period must be positive, got {period}")
        self._sim = sim
        self._manager = manager
        #: Dirty objects keyed by the primary that will push them.
        self._dirty: dict[NodeId, set[ObjectId]] = {}
        self._stopped = False
        self.period = period
        self.flushes = 0
        self._process = PeriodicProcess(sim, period, self._flush)

    @property
    def pending(self) -> int:
        """Objects with updates awaiting the next flush."""
        return sum(len(objs) for objs in self._dirty.values())

    @property
    def stopped(self) -> bool:
        return self._stopped

    def mark_dirty(self, obj: ObjectId) -> None:
        """Record that ``obj`` was updated and needs propagation."""
        if self._stopped:
            raise ConsistencyError(
                f"cannot mark object {obj} dirty on a stopped batcher"
            )
        primary = self._manager.primary(obj)
        self._dirty.setdefault(primary, set()).add(obj)

    def drop_host(self, node: NodeId) -> int:
        """Discard propagation queued at a crashed primary.

        Returns the number of dirty objects whose queued pushes were
        lost.  Their replicas stay stale until anti-entropy re-detects
        the divergence.
        """
        return len(self._dirty.pop(node, ()))

    def _flush(self, now: Time) -> None:
        for primary in sorted(self._dirty):
            for obj in sorted(self._dirty[primary]):
                self._manager.propagate(obj)
        self._dirty.clear()
        self.flushes += 1

    def flush_now(self) -> None:
        """Force an immediate flush outside the periodic schedule."""
        if self._stopped:
            return
        self._flush(self._sim.now)

    def stop(self) -> None:
        """Flush pending updates and halt the periodic process.

        Idempotent: a second stop is a no-op.
        """
        if self._stopped:
            return
        self._stopped = True
        if self._dirty:
            self._flush(self._sim.now)
        self._process.stop()
