"""Measurement and reporting for the paper's evaluation metrics.

The collectors subscribe to the hosting system's observer hooks and
produce the exact quantities Section 6.2 reports:

* :class:`~repro.metrics.bandwidth.BandwidthCollector` — backbone traffic
  in byte-hops, bucketed over time and split into payload vs relocation
  overhead (Figures 6 and 7).
* :class:`~repro.metrics.latency.LatencyCollector` — mean response
  latency over time (Figure 6, right).
* :class:`~repro.metrics.replicas.ReplicaCollector` — replica census over
  time and the mean replicas-per-object statistic (Table 2).
* :class:`~repro.metrics.loadstats.LoadCollector` — maximum host load and
  one focal host's actual load vs its bound estimates (Figure 8).
* :mod:`~repro.metrics.adjustment` — the adjustment-time statistic
  (Table 2): time until bandwidth first stays within 10% of equilibrium.
* :mod:`~repro.metrics.report` — plain-text tables and series renderers
  used by the benchmark harness.
* :mod:`~repro.metrics.availability` — fault-plane scalars (retries,
  detection, repair, unavailability) for runs with faults enabled.
"""

from repro.metrics.adjustment import adjustment_time, equilibrium_level
from repro.metrics.availability import fault_metrics
from repro.metrics.bandwidth import BandwidthCollector
from repro.metrics.collectors import BucketedSeries, TimeSeries
from repro.metrics.latency import LatencyCollector
from repro.metrics.loadstats import LoadCollector
from repro.metrics.replicas import ReplicaCollector

__all__ = [
    "TimeSeries",
    "BucketedSeries",
    "BandwidthCollector",
    "LatencyCollector",
    "LoadCollector",
    "ReplicaCollector",
    "adjustment_time",
    "equilibrium_level",
    "fault_metrics",
]
