"""Host-load statistics (Figure 8).

Figure 8a plots the maximum load in the system over time, showing it is
pulled below the high watermark; Figure 8b plots one host's actual load
together with its lower/upper bound estimates, showing the actual load
stays bracketed.  The collector observes every measurement tick.
"""

from __future__ import annotations

from repro.core.host import HostServer
from repro.core.protocol import HostingSystem
from repro.metrics.collectors import TimeSeries
from repro.types import LoadSample, NodeId, Time


class LoadCollector:
    """Max-load series plus focal-host actual/bound samples."""

    def __init__(
        self, system: HostingSystem, *, focal_host: NodeId | None = None
    ) -> None:
        self._current: dict[NodeId, float] = {
            node: 0.0 for node in system.hosts
        }
        self._last_tick: Time = -1.0
        self.max_series = TimeSeries()
        self.mean_series = TimeSeries()
        #: Node whose estimates Figure 8b plots; defaults to the first
        #: node (a busy one under the paper's round-robin assignment).
        self.focal_host = focal_host if focal_host is not None else 0
        self.focal_samples: list[LoadSample] = []
        system.measurement_observers.append(self._observe)

    def _observe(self, host: HostServer, now: Time) -> None:
        # All hosts tick at the same cadence; the cross-host max for tick
        # T is complete only once the first observation of tick T+1
        # arrives, so flush the previous instant's snapshot *before*
        # folding in this host's new measurement.
        if now != self._last_tick:
            if self._last_tick >= 0:
                values = list(self._current.values())
                self.max_series.append(self._last_tick, max(values))
                self.mean_series.append(
                    self._last_tick, sum(values) / len(values)
                )
            self._last_tick = now
        self._current[host.node] = host.measured_load
        if host.node == self.focal_host:
            self.focal_samples.append(
                LoadSample(
                    time=now,
                    load=host.measured_load,
                    lower_estimate=host.lower_load,
                    upper_estimate=host.upper_load,
                )
            )

    def finalize(self) -> None:
        """Flush the final tick's max/mean sample."""
        if self._last_tick >= 0 and (
            not self.max_series.times
            or self.max_series.times[-1] != self._last_tick
        ):
            values = list(self._current.values())
            self.max_series.append(self._last_tick, max(values))
            self.mean_series.append(self._last_tick, sum(values) / len(values))

    def max_load(self) -> float:
        """Peak of the max-load series over the run."""
        self.finalize()
        return self.max_series.max()

    def max_load_after(self, time: Time) -> float:
        """Peak max-load at or after ``time`` (post-adjustment check)."""
        self.finalize()
        tail = self.max_series.after(time)
        return tail.max()

    def bounds_violations(self, slack: float = 1e-9) -> int:
        """Focal-host samples where actual load escaped its bound bracket.

        Only *clean* samples are checked: right after a relocation the
        measured load legitimately lags the estimates (that is the whole
        reason the estimates exist), so samples whose measurement interval
        contained a relocation — detectable as ``lower > load`` or
        ``load > upper`` while the estimator was dirty — are judged once
        the estimator has reconverged.  In practice the paper's Figure 8b
        shows the actual load between the two estimates; this counter
        should stay zero for converged samples.
        """
        violations = 0
        for sample in self.focal_samples:
            if sample.lower_estimate - slack <= sample.load <= (
                sample.upper_estimate + slack
            ):
                continue
            violations += 1
        return violations
