"""Staleness and divergence metrics for the consistency plane.

The missing metrics axis ROADMAP item 3 names: when the network
misbehaves, how stale do replicas get, and for how long?  Two pieces:

* :class:`StalenessTracker` — live bookkeeping owned by the
  :class:`~repro.consistency.plane.ConsistencyPlane`.  The primary-copy
  manager reports every version change; the tracker maintains the
  current stale-replica set per object and turns transitions into
  *divergence windows* (first replica diverges → window opens; last
  replica converges → window closes).  Served requests are checked
  against the stale set to count stale reads.

* :func:`staleness_metrics` — a flat scalar summary merged into
  ``scenario_metrics`` for runs with an active consistency plane,
  mirroring how :func:`repro.metrics.availability.fault_metrics` gates
  on the fault plane.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.types import NodeId, ObjectId, Time

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.protocol import HostingSystem


class StalenessTracker:
    """Tracks stale replica sets, divergence windows, and stale reads."""

    __slots__ = (
        "_stale_hosts",
        "_window_open_at",
        "windows_opened",
        "windows_closed",
        "divergence_seconds",
        "max_window_seconds",
        "reads",
        "stale_reads",
        "last_stale_read_at",
        "last_window_closed_at",
    )

    def __init__(self) -> None:
        #: Currently stale replicas per object (absent == none stale).
        self._stale_hosts: dict[ObjectId, set[NodeId]] = {}
        #: Open-window start times per object.
        self._window_open_at: dict[ObjectId, Time] = {}
        self.windows_opened = 0
        self.windows_closed = 0
        #: Total closed-window divergence time.
        self.divergence_seconds = 0.0
        #: Longest closed window.
        self.max_window_seconds = 0.0
        self.reads = 0
        self.stale_reads = 0
        self.last_stale_read_at: Time | None = None
        self.last_window_closed_at: Time | None = None

    # ------------------------------------------------------------------
    # Updates from the consistency plane
    # ------------------------------------------------------------------

    def set_stale_set(
        self, obj: ObjectId, hosts: Iterable[NodeId], now: Time
    ) -> None:
        """Replace ``obj``'s stale-replica set, tracking window edges."""
        stale = set(hosts)
        had = bool(self._stale_hosts.get(obj))
        if stale:
            self._stale_hosts[obj] = stale
            if not had:
                self._window_open_at[obj] = now
                self.windows_opened += 1
        else:
            self._stale_hosts.pop(obj, None)
            if had:
                opened = self._window_open_at.pop(obj)
                window = now - opened
                self.divergence_seconds += window
                if window > self.max_window_seconds:
                    self.max_window_seconds = window
                self.windows_closed += 1
                self.last_window_closed_at = now

    def note_read(self, obj: ObjectId, host: NodeId, now: Time) -> bool:
        """Record a served request; returns whether it was stale."""
        self.reads += 1
        if host in self._stale_hosts.get(obj, ()):
            self.stale_reads += 1
            self.last_stale_read_at = now
            return True
        return False

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def is_stale(self, obj: ObjectId, host: NodeId) -> bool:
        return host in self._stale_hosts.get(obj, ())

    def window_age(self, obj: ObjectId, now: Time) -> Time:
        """Age of ``obj``'s open divergence window (0 if none open)."""
        opened = self._window_open_at.get(obj)
        return 0.0 if opened is None else now - opened

    def open_windows(self) -> int:
        return len(self._window_open_at)

    def open_divergence_seconds(self, until: Time) -> float:
        """Accumulated time of still-open windows, measured at ``until``."""
        return sum(until - opened for opened in self._window_open_at.values())

    def max_window(self, until: Time) -> float:
        """Longest window, counting open windows at their current age."""
        longest = self.max_window_seconds
        for opened in self._window_open_at.values():
            age = until - opened
            if age > longest:
                longest = age
        return longest

    def stale_read_fraction(self) -> float:
        return self.stale_reads / self.reads if self.reads else 0.0


def staleness_metrics(system: HostingSystem, until: Time) -> dict[str, float]:
    """Flat scalar summary of the consistency plane's run.

    Raises :class:`ValueError` when the system has no consistency plane
    (mirrors :func:`repro.metrics.availability.fault_metrics`).
    """
    plane = system.consistency_plane
    if plane is None:
        raise ValueError("system has no consistency plane")
    tracker = plane.tracker
    manager = plane.manager
    metrics: dict[str, float] = {
        "writes_applied": float(manager.updates_applied),
        "updates_propagated": float(manager.updates_propagated),
        "update_push_failures": float(manager.update_push_failures),
        "reads_observed": float(tracker.reads),
        "stale_reads": float(tracker.stale_reads),
        "stale_read_fraction": tracker.stale_read_fraction(),
        "divergence_windows_opened": float(tracker.windows_opened),
        "divergence_windows_closed": float(tracker.windows_closed),
        "divergence_windows_open": float(tracker.open_windows()),
        "divergence_seconds": tracker.divergence_seconds
        + tracker.open_divergence_seconds(until),
        "divergence_window_max_seconds": tracker.max_window(until),
        "last_stale_read_at": (
            -1.0
            if tracker.last_stale_read_at is None
            else float(tracker.last_stale_read_at)
        ),
        "last_window_closed_at": (
            -1.0
            if tracker.last_window_closed_at is None
            else float(tracker.last_window_closed_at)
        ),
        "read_repair_attempts": float(plane.read_repair_attempts),
        "read_repairs": float(plane.read_repairs),
    }
    if plane.batcher is not None:
        metrics["epidemic_flushes"] = float(plane.batcher.flushes)
        metrics["epidemic_pending_lost"] = float(plane.epidemic_pending_lost)
    if plane.antientropy is not None:
        daemon = plane.antientropy
        metrics["anti_entropy_rounds"] = float(daemon.rounds)
        metrics["anti_entropy_digest_exchanges"] = float(daemon.digest_exchanges)
        metrics["anti_entropy_digest_failures"] = float(daemon.digest_failures)
        metrics["anti_entropy_repushes"] = float(daemon.repushes)
        metrics["anti_entropy_bytes"] = float(
            daemon.digest_bytes + daemon.repush_bytes
        )
        update_bytes = daemon.repush_bytes + manager.updates_propagated * float(
            system.object_size
        )
        metrics["anti_entropy_overhead_fraction"] = (
            daemon.digest_bytes / (daemon.digest_bytes + update_bytes)
            if daemon.digest_bytes
            else 0.0
        )
    if plane.has_category2:
        metrics["category2_served"] = float(plane.category2_served)
        metrics["category2_merges"] = float(plane.category2_merges)
        metrics["category2_counts_lost"] = float(plane.category2_counts_lost)
        metrics["category2_reaggregations"] = float(plane.category2_reaggregations)
        metrics["category2_merged_total"] = float(plane.category2_merged_total())
    return metrics
