"""Fault-plane metrics: retries, detection, repair, unavailability.

Flattens the robustness extension's counters — the fault plane's
drop/duplication tallies, the RPC layer's retry/timeout counters, the
request-level loss statistics, and the failure detector's and repair
daemon's activity — into the same JSON-safe scalar dict shape as
:func:`repro.scenarios.runner.scenario_metrics`.  Only emitted for runs
with an active fault plane, so fault-free metric dicts are unchanged.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.types import Time

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.protocol import HostingSystem


def fault_metrics(system: "HostingSystem", until: Time) -> dict[str, float]:
    """All fault-plane scalars for a run that ended at ``until``.

    Raises if the system has no fault plane: callers gate on
    ``system.fault_plane is not None`` so fault-free runs never grow
    extra keys.
    """
    plane = system.fault_plane
    if plane is None:
        raise ValueError("fault_metrics requires an active fault plane")
    metrics: dict[str, float] = {}
    metrics.update(plane.summary())
    metrics.update(system.rpc.summary())
    metrics["requests_lost"] = float(system.lost_requests)
    metrics["requests_failed"] = float(system.failed_requests)
    metrics["requests_rerouted"] = float(system.rerouted_requests)
    detector = system.failure_detector
    if detector is not None:
        metrics["failure_detections"] = float(detector.detections)
        metrics["failure_recoveries"] = float(detector.recoveries)
    daemon = system.repair_daemon
    if daemon is not None:
        metrics["repairs"] = float(daemon.repairs)
        metrics["unavailability_seconds"] = daemon.unavailability_seconds_total(until)
    return metrics
