"""Generic time-series containers used by all collectors."""

from __future__ import annotations

import math
from typing import Iterable

from repro.errors import ConfigurationError
from repro.types import Time


class TimeSeries:
    """An append-only sequence of ``(time, value)`` samples."""

    __slots__ = ("times", "values")

    def __init__(self) -> None:
        self.times: list[Time] = []
        self.values: list[float] = []

    def __len__(self) -> int:
        return len(self.times)

    def append(self, time: Time, value: float) -> None:
        if self.times and time < self.times[-1]:
            raise ConfigurationError("time series samples must be time-ordered")
        self.times.append(time)
        self.values.append(value)

    def items(self) -> Iterable[tuple[Time, float]]:
        return zip(self.times, self.values)

    def max(self) -> float:
        if not self.values:
            raise ConfigurationError("max() of an empty time series")
        return max(self.values)

    def mean(self) -> float:
        if not self.values:
            raise ConfigurationError("mean() of an empty time series")
        return sum(self.values) / len(self.values)

    def mean_tail(self, fraction: float = 0.25) -> float:
        """Mean of the last ``fraction`` of samples (equilibrium estimate)."""
        if not self.values:
            raise ConfigurationError("mean_tail() of an empty time series")
        if not 0.0 < fraction <= 1.0:
            raise ConfigurationError(f"fraction must be in (0, 1], got {fraction}")
        count = max(1, math.ceil(len(self.values) * fraction))
        tail = self.values[-count:]
        return sum(tail) / len(tail)

    def after(self, time: Time) -> "TimeSeries":
        """Samples at or after ``time`` (new series)."""
        out = TimeSeries()
        for t, v in self.items():
            if t >= time:
                out.append(t, v)
        return out


class BucketedSeries:
    """Accumulates values into fixed-width time buckets.

    Bucket ``k`` covers ``[k * width, (k+1) * width)``.  ``add`` may be
    called in any time order (events inside one simulated instant arrive
    unordered); queries finalise the layout lazily.
    """

    __slots__ = ("width", "_sums", "_counts")

    def __init__(self, width: float) -> None:
        if width <= 0:
            raise ConfigurationError(f"bucket width must be positive, got {width}")
        self.width = width
        self._sums: dict[int, float] = {}
        self._counts: dict[int, int] = {}

    def add(self, time: Time, value: float) -> None:
        bucket = int(time // self.width)
        self._sums[bucket] = self._sums.get(bucket, 0.0) + value
        self._counts[bucket] = self._counts.get(bucket, 0) + 1

    def bulk_add(self, bucket: int, value: float, count: int) -> None:
        """Fold ``count`` identical ``value`` samples into one bucket.

        Equivalent to ``count`` calls of :meth:`add` with a time inside
        the bucket — *bit*-equivalent when ``value`` is integer-valued
        (integer float sums below 2**53 are exact and order-free), which
        is how the request fast lane materialises byte-hop series from
        per-(bucket, hop-count) accumulators at finalisation.
        """
        self._sums[bucket] = self._sums.get(bucket, 0.0) + value * count
        self._counts[bucket] = self._counts.get(bucket, 0) + count

    def __len__(self) -> int:
        return len(self._sums)

    def _buckets(self) -> list[int]:
        return sorted(self._sums)

    def sums(self) -> TimeSeries:
        """Per-bucket totals, indexed by bucket start time.

        Empty buckets between the first and last populated ones are
        included as zeros so rates are not silently inflated.
        """
        series = TimeSeries()
        buckets = self._buckets()
        if not buckets:
            return series
        for bucket in range(buckets[0], buckets[-1] + 1):
            series.append(bucket * self.width, self._sums.get(bucket, 0.0))
        return series

    def means(self) -> TimeSeries:
        """Per-bucket mean of added values (empty buckets skipped)."""
        series = TimeSeries()
        for bucket in self._buckets():
            series.append(
                bucket * self.width, self._sums[bucket] / self._counts[bucket]
            )
        return series

    def rates(self) -> TimeSeries:
        """Per-bucket totals divided by the bucket width (per-second rates)."""
        series = TimeSeries()
        totals = self.sums()
        for time, value in totals.items():
            series.append(time, value / self.width)
        return series

    def total(self) -> float:
        return sum(self._sums.values())

    def count(self) -> int:
        return sum(self._counts.values())
