"""Plain-text rendering of tables and figure series.

The benchmark harness prints, for every paper table and figure, the rows
or series the paper reports next to our measured values.  Output is plain
monospace text (this library runs offline; no plotting dependencies).
"""

from __future__ import annotations

from repro.metrics.collectors import TimeSeries

_BLOCKS = " ▁▂▃▄▅▆▇█"


def format_table(
    headers: list[str], rows: list[list[str]], *, title: str | None = None
) -> str:
    """Render an aligned monospace table."""
    widths = [len(h) for h in headers]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row width {len(row)} does not match header width {len(headers)}"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def sparkline(series: TimeSeries, *, width: int = 60) -> str:
    """A unicode block-character sketch of a series (resampled to width)."""
    if len(series) == 0:
        return "(empty series)"
    values = series.values
    if len(values) > width:
        # Mean-resample into `width` cells.
        cell = len(values) / width
        resampled = []
        for index in range(width):
            lo = int(index * cell)
            hi = max(lo + 1, int((index + 1) * cell))
            chunk = values[lo:hi]
            resampled.append(sum(chunk) / len(chunk))
        values = resampled
    top = max(values)
    if top <= 0:
        return _BLOCKS[0] * len(values)
    chars = []
    for value in values:
        level = int(round(value / top * (len(_BLOCKS) - 1)))
        chars.append(_BLOCKS[max(0, min(level, len(_BLOCKS) - 1))])
    return "".join(chars)


def series_summary(name: str, series: TimeSeries, *, unit: str = "") -> str:
    """One-line summary: first / equilibrium / reduction, plus a sketch."""
    if len(series) == 0:
        return f"{name}: (empty)"
    first = series.values[0]
    equilibrium = series.mean_tail()
    reduction = (1.0 - equilibrium / first) * 100.0 if first else 0.0
    suffix = f" {unit}" if unit else ""
    return (
        f"{name}: start={first:.4g}{suffix} eq={equilibrium:.4g}{suffix} "
        f"reduction={reduction:.1f}%  {sparkline(series)}"
    )


def percent(value: float, *, digits: int = 1) -> str:
    return f"{value * 100.0:.{digits}f}%"


def reduction_percent(start: float, equilibrium: float) -> float:
    """Relative reduction from ``start`` to ``equilibrium`` in [0, 1]."""
    if start == 0:
        return 0.0
    return 1.0 - equilibrium / start
