"""Adjustment time (Table 2).

"We compute the adjustment time as the time it takes to reach a bandwidth
consumption that is 10% above the average equilibrium bandwidth
consumption."  The equilibrium level is the mean of the tail of the
bandwidth series; the adjustment time is the start of the first bucket
from which the series never again exceeds ``(1 + margin) * equilibrium``.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.metrics.collectors import TimeSeries
from repro.types import Time


def equilibrium_level(series: TimeSeries, *, tail: float = 0.25) -> float:
    """The equilibrium value: mean over the final ``tail`` of the series."""
    return series.mean_tail(tail)


def adjustment_time(
    series: TimeSeries,
    *,
    margin: float = 0.10,
    tail: float = 0.25,
) -> Time:
    """Time at which the series settles within ``margin`` of equilibrium.

    Returns the first sample time from which every subsequent value stays
    at or below ``(1 + margin) * equilibrium``.  Raises if the series is
    empty or never settles (the last sample above threshold is the final
    one).
    """
    if len(series) == 0:
        raise ConfigurationError("adjustment_time() of an empty series")
    threshold = (1.0 + margin) * equilibrium_level(series, tail=tail)
    last_above: int | None = None
    for index, value in enumerate(series.values):
        if value > threshold:
            last_above = index
    if last_above is None:
        return series.times[0]
    if last_above == len(series.values) - 1:
        raise ConfigurationError(
            "series never settles: final sample still above threshold "
            f"({series.values[-1]:.3g} > {threshold:.3g})"
        )
    return series.times[last_above + 1]
