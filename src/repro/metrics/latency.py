"""Response latency accounting (Figure 6, right panes).

A request's latency is queueing plus service at the host plus all network
delays, including the distributor-to-redirector detour (the reason the
paper's latency win is smaller than its bandwidth win).  The collector
buckets completed-request latencies over time and keeps aggregate
statistics; raw samples can optionally be retained for percentile
analysis in small runs.
"""

from __future__ import annotations

from repro.core.protocol import HostingSystem
from repro.errors import ConfigurationError
from repro.metrics.collectors import BucketedSeries, TimeSeries
from repro.types import RequestRecord


class LatencyCollector:
    """Mean response latency per time bucket plus run aggregates."""

    def __init__(
        self,
        system: HostingSystem,
        *,
        bucket: float = 60.0,
        keep_samples: bool = False,
    ) -> None:
        self._buckets = BucketedSeries(bucket)
        self._hop_buckets = BucketedSeries(bucket)
        self._drop_buckets = BucketedSeries(bucket)
        self.dropped = 0
        #: Requests that found no available replica (failure injection).
        self.failed = 0
        #: Requests lost in transit or to a mid-service crash (fault
        #: plane only; always zero on a reliable network).
        self.lost = 0
        self.completed = 0
        self.total_latency = 0.0
        self.total_response_hops = 0
        self.max_latency = 0.0
        self.samples: list[float] | None = [] if keep_samples else None
        system.request_observers.append(self._observe)

    def _observe(self, record: RequestRecord) -> None:
        if record.failed:
            self.failed += 1
            return
        if record.lost:
            # No response ever reached the client; the sample would be
            # meaningless, so lost requests are counted but excluded
            # from every latency statistic.
            self.lost += 1
            return
        if record.dropped:
            self.dropped += 1
            self._drop_buckets.add(record.completed_at, 1.0)
            return
        latency = record.latency
        self.completed += 1
        self.total_latency += latency
        self.total_response_hops += record.response_hops
        if latency > self.max_latency:
            self.max_latency = latency
        self._buckets.add(record.completed_at, latency)
        self._hop_buckets.add(record.completed_at, float(record.response_hops))
        if self.samples is not None:
            self.samples.append(latency)

    def fast_hooks(self) -> tuple[float, dict, dict, dict, dict, dict, dict]:
        """The mutable internals the request fast lane writes directly.

        Returns ``(bucket_width, latency_sums, latency_counts, hop_sums,
        hop_counts, drop_sums, drop_counts)`` — the raw per-bucket dicts
        of the three :class:`BucketedSeries`.  The lane performs exactly
        the arithmetic :meth:`_observe` would (same dicts, same ops, same
        event order), skipping only the record allocation and observer
        dispatch, so fast and slow paths interleave bit-identically.
        Aggregate scalars (``completed``, ``total_latency``, ...) are
        plain attributes the lane updates in place.
        """
        return (
            self._buckets.width,
            self._buckets._sums,
            self._buckets._counts,
            self._hop_buckets._sums,
            self._hop_buckets._counts,
            self._drop_buckets._sums,
            self._drop_buckets._counts,
        )

    def mean_latency_series(self) -> TimeSeries:
        """Mean latency of requests completing in each bucket (Fig. 6)."""
        return self._buckets.means()

    def mean_response_hops_series(self) -> TimeSeries:
        """Mean response hop count per bucket (a proximity proxy)."""
        return self._hop_buckets.means()

    def dropped_series(self) -> TimeSeries:
        """Dropped requests per bucket (saturated-host rejections)."""
        return self._drop_buckets.sums()

    def drop_rate(self) -> float:
        """Fraction of all observed requests that were dropped."""
        total = self.completed + self.dropped
        return self.dropped / total if total else 0.0

    def mean_latency(self) -> float:
        if not self.completed:
            raise ConfigurationError("no completed requests")
        return self.total_latency / self.completed

    def mean_response_hops(self) -> float:
        if not self.completed:
            raise ConfigurationError("no completed requests")
        return self.total_response_hops / self.completed

    def percentile(self, q: float) -> float:
        """Latency percentile ``q`` in [0, 100]; needs ``keep_samples``."""
        if self.samples is None:
            raise ConfigurationError("collector built without keep_samples")
        if not self.samples:
            raise ConfigurationError("no completed requests")
        if not 0.0 <= q <= 100.0:
            raise ConfigurationError(f"percentile must be in [0, 100], got {q}")
        ordered = sorted(self.samples)
        index = min(len(ordered) - 1, int(round(q / 100.0 * (len(ordered) - 1))))
        return ordered[index]
