"""Replica census over time (Table 2's "average number of replicas").

Tracks the total number of physical replicas by observing redirector
replica-set changes (creations net of drops), so the census is exact and
O(1) per event rather than a periodic full scan; a sampled time series is
recorded each placement interval for plots and equilibrium statistics.
"""

from __future__ import annotations

from repro.core.protocol import HostingSystem
from repro.metrics.collectors import TimeSeries
from repro.sim.process import PeriodicProcess
from repro.types import NodeId, ObjectId, Time


class ReplicaCollector:
    """Time series of total replicas plus relocation counters."""

    def __init__(
        self, system: HostingSystem, *, sample_interval: float = 60.0
    ) -> None:
        self._system = system
        self.series = TimeSeries()
        self.created = 0
        self.dropped = 0
        self._current = system.total_replicas()
        for service in system.redirectors.services:
            service.add_observer(self._observe)
        self.series.append(system.sim.now, float(self._current))
        self._process = PeriodicProcess(
            system.sim, sample_interval, self._sample
        )

    def _observe(
        self,
        obj: ObjectId,
        host: NodeId,
        affinity: int,
        created: bool,
        dropped: bool,
    ) -> None:
        if created:
            self.created += 1
            self._current += 1
        elif dropped:
            self.dropped += 1
            self._current -= 1

    def _sample(self, now: Time) -> None:
        self.series.append(now, float(self._current))

    @property
    def current_total(self) -> int:
        return self._current

    def replicas_per_object(self) -> float:
        """Current mean physical replicas per object."""
        return self._current / self._system.num_objects

    def equilibrium_replicas_per_object(self, tail: float = 0.25) -> float:
        """Mean replicas per object over the final ``tail`` of the run."""
        return self.series.mean_tail(tail) / self._system.num_objects

    def stop(self) -> None:
        self._process.stop()
