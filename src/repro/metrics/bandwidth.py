"""Backbone bandwidth accounting (Figures 6 and 7).

"The bandwidth is determined by summing the number of bytes transmitted
on each hop" — i.e. byte-hops.  The collector observes every network send
and buckets byte-hops over time, split by traffic class, so the harness
can report both the payload bandwidth trajectory (Figure 6) and the
relocation overhead as a fraction of total traffic (Figure 7).
"""

from __future__ import annotations

from repro.metrics.collectors import BucketedSeries, TimeSeries
from repro.network.message import OVERHEAD_CLASSES, MessageClass
from repro.network.transport import Network
from repro.types import NodeId, Time


class BandwidthCollector:
    """Time-bucketed byte-hop accounting per traffic class."""

    def __init__(self, network: Network, *, bucket: float = 60.0) -> None:
        self.bucket = bucket
        self._by_class: dict[MessageClass, BucketedSeries] = {
            cls: BucketedSeries(bucket) for cls in MessageClass
        }
        network.add_observer(self._observe)

    def _observe(
        self,
        time: Time,
        source: NodeId,
        target: NodeId,
        hops: int,
        size: int,
        message_class: MessageClass,
    ) -> None:
        if hops:
            self._by_class[message_class].add(time, float(size) * hops)

    def absorb_counts(
        self,
        message_class: MessageClass,
        size: int,
        counts: dict[tuple[int, int], int],
    ) -> None:
        """Fold aggregated fast-lane traffic into the bucketed series.

        ``counts`` maps ``(bucket, hops)`` to the number of ``size``-byte
        messages of ``message_class`` that crossed ``hops`` links in that
        bucket.  Byte-hop values are integers, so the folded sums are
        bit-identical to per-message :meth:`_observe` calls regardless of
        interleaving with directly observed (slow-path) traffic.
        """
        series = self._by_class[message_class]
        for (bucket, hops), count in counts.items():
            series.bulk_add(bucket, float(size) * hops, count)

    def class_series(self, message_class: MessageClass) -> TimeSeries:
        """Byte-hops per bucket for one traffic class."""
        return self._by_class[message_class].sums()

    def total_series(self) -> TimeSeries:
        """Byte-hops per bucket over all traffic classes."""
        return self._merged(set(MessageClass))

    def payload_series(self) -> TimeSeries:
        """Byte-hops per bucket excluding relocation overhead.

        This is the quantity Figure 6 plots: the traffic due to servicing
        client requests (responses dominate; requests are small).
        """
        return self._merged(set(MessageClass) - set(OVERHEAD_CLASSES))

    def overhead_series(self) -> TimeSeries:
        """Byte-hops per bucket for relocation + control traffic."""
        return self._merged(set(OVERHEAD_CLASSES))

    def _merged(self, classes: set[MessageClass]) -> TimeSeries:
        merged: dict[float, float] = {}
        for cls in classes:
            for time, value in self._by_class[cls].sums().items():
                merged[time] = merged.get(time, 0.0) + value
        series = TimeSeries()
        if not merged:
            return series
        times = sorted(merged)
        first, last = times[0], times[-1]
        t = first
        while t <= last + 1e-9:
            series.append(t, merged.get(t, 0.0))
            t += self.bucket
        return series

    def overhead_fraction_series(self) -> TimeSeries:
        """Overhead byte-hops as a fraction of total, per bucket (Fig. 7)."""
        total = dict(self.total_series().items())
        series = TimeSeries()
        for time, overhead in self.overhead_series().items():
            denominator = total.get(time, 0.0)
            series.append(time, overhead / denominator if denominator else 0.0)
        return series

    def total_byte_hops(self) -> float:
        return sum(s.total() for s in self._by_class.values())

    def overhead_byte_hops(self) -> float:
        return sum(self._by_class[cls].total() for cls in OVERHEAD_CLASSES)

    def overhead_fraction(self) -> float:
        """Run-wide overhead share of total traffic."""
        total = self.total_byte_hops()
        return self.overhead_byte_hops() / total if total else 0.0
