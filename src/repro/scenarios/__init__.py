"""Experiment scenarios: Table 1 parameters, presets and the runner.

A :class:`~repro.scenarios.config.ScenarioConfig` bundles every knob of a
simulation run (topology seed, workload, rates, protocol parameters,
duration); :func:`~repro.scenarios.runner.run_scenario` builds the full
system, attaches collectors, runs it, and returns a
:class:`~repro.scenarios.runner.ScenarioResult` with the paper's metrics.

:mod:`~repro.scenarios.presets` provides the paper's exact configurations
(low-load 90/80, high-load 50/40, each of the four workloads) and the
*scaled* variants the benchmark harness uses by default — proportional
scaling of objects, request rate, capacity and watermarks that preserves
per-object request rates (hence placement dynamics) while shrinking the
event count; set ``REPRO_FULL_SCALE=1`` to run paper scale.
"""

from repro.scenarios.config import ScenarioConfig
from repro.scenarios.presets import (
    WORKLOAD_NAMES,
    bench_scale,
    paper_parameters,
    paper_scenario,
)
from repro.scenarios.runner import ScenarioResult, build_system, run_scenario

__all__ = [
    "ScenarioConfig",
    "ScenarioResult",
    "run_scenario",
    "build_system",
    "paper_parameters",
    "paper_scenario",
    "bench_scale",
    "WORKLOAD_NAMES",
]
