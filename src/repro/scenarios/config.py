"""Scenario configuration: everything needed to reproduce one run.

Field defaults reproduce Table 1 of the paper (low-load watermarks).
``scaled`` produces a cheaper but dynamics-preserving variant: objects,
request rate, capacity and watermarks shrink together, so per-object
request rates (the quantities compared against the deletion/replication
thresholds) and relative server utilisation are unchanged, while total
event count drops by the scale factor.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.consistency.config import ConsistencyConfig
from repro.core.config import ProtocolConfig
from repro.errors import ConfigurationError
from repro.network.faults import FaultConfig


@dataclass(frozen=True, slots=True)
class ScenarioConfig:
    """One simulation run, fully specified."""

    name: str = "paper"
    workload: str = "zipf"
    seed: int = 1
    #: Simulated duration, seconds.  The paper's adjustment times are
    #: 20-23 minutes; 3000 s leaves a stable equilibrium tail.
    duration: float = 3000.0
    num_objects: int = 10_000
    object_size: int = 12 * 1024
    node_request_rate: float = 40.0
    capacity: float = 200.0
    hop_delay: float = 0.010
    bandwidth: float = 350_000.0
    protocol: ProtocolConfig = field(default_factory=ProtocolConfig)
    #: Topology seed for the synthetic UUNET backbone.
    topology_seed: int = 1999
    #: Metrics bucket width in seconds.
    bucket: float = 60.0
    #: False freezes the initial placement (the static baseline).
    dynamic: bool = True
    #: Request-distribution policy: "paper", "round-robin" or "closest".
    distribution: str = "paper"
    #: Placement strategy from the baseline registry
    #: (:data:`repro.baselines.STRATEGIES`): "paper" (the protocol),
    #: "static", "round-robin", "closest", "full-replication",
    #: "offline-greedy" or "availability-aware".  Non-"paper" strategies
    #: may override build-time fields (``dynamic``, ``distribution``),
    #: swap the initial placement, or attach a placer to the run.
    strategy: str = "paper"
    #: Poisson (True) vs evenly spaced (False, paper) request arrivals.
    poisson: bool = False
    #: Maintain per-link byte counters (off by default for speed).
    track_links: bool = False
    #: Keep every latency sample (percentiles) — memory-heavy at scale.
    keep_latency_samples: bool = False
    #: Load-axis scale factor relative to the paper's Table 1 (set by
    #: :meth:`scaled`); used to report full-scale-equivalent overhead.
    load_scale: float = 1.0
    #: Attach a :class:`~repro.obs.tracer.DecisionTracer` to the run and
    #: surface it as :attr:`ScenarioResult.trace`.
    traced: bool = False
    #: Per-kind ring capacity of the auto-attached tracer.
    trace_capacity: int = 65_536
    #: Network fault model (robustness extension).  Disabled by default,
    #: which keeps the run byte-identical to the reliable simulator.
    faults: FaultConfig = field(default_factory=FaultConfig)
    #: Consistency plane: provider writes, category mix, epidemic
    #: batching, anti-entropy and read-repair (Sec. 5 under faults).
    #: Disabled by default, which builds no plane at all and keeps the
    #: run byte-identical to write-free scenarios.
    consistency: ConsistencyConfig = field(default_factory=ConsistencyConfig)
    #: Run :meth:`HostingSystem.check_invariants` at the end of the run
    #: (registry-subset and affinity consistency).  Opt-in: the checks
    #: are O(objects x replicas) and belong in tests and debugging runs,
    #: not in every benchmark sweep.  Excluded from the sweep spec hash —
    #: it verifies a run without changing what runs.
    check_invariants: bool = False
    #: Pre-draw request arrivals per measurement interval as vectors
    #: (:class:`~repro.workloads.batched.BatchedRequestGenerator`) instead
    #: of one scheduler event per request.  Same RNG streams, same arrival
    #: times and objects; only the global event-sequence interleaving of
    #: exact-tie timestamps can differ (measure-zero — random phases).
    #: Excluded from the sweep spec hash — a scheduling-substrate knob,
    #: not a scenario parameter.
    batched_arrivals: bool = False
    #: Install the flattened request pipeline
    #: (:mod:`repro.core.fastlane`) when the run is eligible (no fault
    #: plane, no tracer, no extra observers, ...).  The lane simulates
    #: the same events and produces bit-identical metrics, so this is a
    #: pure performance knob; excluded from the sweep spec hash.  Turn
    #: off to force every request through the reference pipeline.
    fast_lane: bool = True
    #: Event-queue bucket width override, seconds.  ``None`` auto-sizes
    #: from the expected event rate (:func:`repro.scenarios.runner.
    #: auto_bucket_width`).  Pure performance knob — ordering is exact
    #: ``(time, seq)`` at any width — and excluded from the spec hash.
    queue_bucket_width: float | None = None

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ConfigurationError("duration must be positive")
        if self.num_objects < 1:
            raise ConfigurationError("need at least one object")
        if self.node_request_rate <= 0:
            raise ConfigurationError("request rate must be positive")
        if self.capacity <= 0:
            raise ConfigurationError("capacity must be positive")
        if self.distribution not in ("paper", "round-robin", "closest"):
            raise ConfigurationError(
                f"unknown distribution policy {self.distribution!r}"
            )
        if self.strategy != "paper":
            # Late import: the baseline registry is a config consumer.
            from repro.baselines import resolve_strategy

            resolve_strategy(self.strategy)
        if self.bucket <= 0:
            raise ConfigurationError("bucket width must be positive")
        if self.trace_capacity < 1:
            raise ConfigurationError("trace capacity must be at least 1")
        if self.queue_bucket_width is not None and self.queue_bucket_width <= 0:
            raise ConfigurationError("queue bucket width must be positive")

    def scaled(self, factor: float) -> "ScenarioConfig":
        """Scale the *load axis* of the run by ``factor``.

        Every quantity measured in requests/sec scales together: the
        per-node request rate, host capacity, both watermarks and both
        placement thresholds (u and m).  The object namespace, topology,
        durations and intervals are untouched.  Because the protocol only
        ever compares load-dimension quantities against each other
        (unit access rate vs u/m, loads vs watermarks, 4·l/aff vs
        headroom), the entire placement dynamics is exactly the full-scale
        dynamics with the load axis relabelled — only the integer-count
        granularity of access statistics gets coarser.  Event count (and
        hence wall-clock time) scales by ``factor``.
        """
        if factor <= 0:
            raise ConfigurationError(f"scale factor must be positive, got {factor}")
        if factor == 1.0:
            return self
        protocol = self.protocol.replace(
            high_watermark=self.protocol.high_watermark * factor,
            low_watermark=self.protocol.low_watermark * factor,
            deletion_threshold=self.protocol.deletion_threshold * factor,
            replication_threshold=self.protocol.replication_threshold * factor,
        )
        return dataclasses.replace(
            self,
            name=f"{self.name}-x{factor:g}",
            node_request_rate=self.node_request_rate * factor,
            capacity=self.capacity * factor,
            protocol=protocol,
            load_scale=self.load_scale * factor,
        )

    def replace(self, **changes) -> "ScenarioConfig":
        """A copy with arbitrary field changes, revalidated."""
        return dataclasses.replace(self, **changes)

    @property
    def expected_requests(self) -> float:
        """Rough total request count (53 gateways at full scale)."""
        return self.node_request_rate * self.duration
