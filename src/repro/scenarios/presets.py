"""The paper's exact experiment configurations, plus scaled defaults.

``paper_parameters()`` reproduces Table 1 verbatim (low-load watermarks
90/80); ``paper_scenario(workload, high_load=...)`` selects the per-
workload runs behind Figures 6–9 and Table 2.

Scale: a full paper run is 53 gateways x 40 req/s x 2400 s ≈ 5 M
requests, minutes of wall-clock per run in pure Python.  Benchmarks
therefore default to a proportional scale factor (see
:meth:`~repro.scenarios.config.ScenarioConfig.scaled`) of
:data:`DEFAULT_BENCH_SCALE`; override with the ``REPRO_SCALE`` env var or
``REPRO_FULL_SCALE=1`` for paper scale.
"""

from __future__ import annotations

import os

from repro.consistency.config import ConsistencyConfig
from repro.core.config import ProtocolConfig
from repro.errors import ConfigurationError
from repro.network.faults import FaultConfig
from repro.scenarios.config import ScenarioConfig
from repro.topology.generators import random_geometric_topology
from repro.topology.graph import Topology

#: The four evaluation workloads of Section 6.1, in the paper's order.
WORKLOAD_NAMES = ("zipf", "hot-sites", "hot-pages", "regional")

#: Default load-axis scale for benchmark runs (12 req/s per node).  Below
#: ~0.2 the integer access counts in the [u, m] band get noisy enough to
#: cause spurious replica drops that the full-scale system never sees.
DEFAULT_BENCH_SCALE = 0.3


def paper_parameters(*, high_load: bool = False) -> ScenarioConfig:
    """Table 1, verbatim.

    ``high_load=True`` selects the Figure 9 variant: watermarks 50/40
    instead of 90/80, which "on average places the low watermark load on
    every server" (mean per-node demand is 40 req/s).
    """
    watermarks = (40.0, 50.0) if high_load else (80.0, 90.0)
    protocol = ProtocolConfig(
        high_watermark=watermarks[1],
        low_watermark=watermarks[0],
        deletion_threshold=0.03,
        replication_threshold=0.18,
        migr_ratio=0.6,
        repl_ratio=1.0 / 6.0,
        distribution_constant=2.0,
        placement_interval=100.0,
        measurement_interval=20.0,
    )
    return ScenarioConfig(
        name="paper-high-load" if high_load else "paper-low-load",
        num_objects=10_000,
        object_size=12 * 1024,
        node_request_rate=40.0,
        capacity=200.0,
        hop_delay=0.010,
        bandwidth=350_000.0,
        protocol=protocol,
    )


def bench_scale() -> float:
    """The scale factor benchmark runs should use.

    ``REPRO_FULL_SCALE=1`` forces 1.0; ``REPRO_SCALE=<float>`` overrides;
    otherwise :data:`DEFAULT_BENCH_SCALE`.
    """
    if os.environ.get("REPRO_FULL_SCALE") == "1":
        return 1.0
    override = os.environ.get("REPRO_SCALE")
    if override is not None:
        try:
            value = float(override)
        except ValueError as exc:
            raise ConfigurationError(f"bad REPRO_SCALE {override!r}") from exc
        if value <= 0:
            raise ConfigurationError(f"REPRO_SCALE must be positive, got {value}")
        return value
    return DEFAULT_BENCH_SCALE


def paper_scenario(
    workload: str,
    *,
    high_load: bool = False,
    dynamic: bool = True,
    scale: float | None = None,
    duration: float | None = None,
    seed: int = 1,
) -> ScenarioConfig:
    """One of the paper's evaluation runs, optionally scaled.

    Parameters mirror the experiment grid: ``workload`` is one of
    :data:`WORKLOAD_NAMES`, ``high_load`` selects the Figure 9 variant,
    ``dynamic=False`` yields the static-placement comparison run.
    """
    if workload not in WORKLOAD_NAMES and workload != "uniform":
        raise ConfigurationError(
            f"unknown workload {workload!r}; expected one of {WORKLOAD_NAMES}"
        )
    config = paper_parameters(high_load=high_load)
    config = config.replace(
        name=f"{config.name}-{workload}", workload=workload, seed=seed
    )
    factor = bench_scale() if scale is None else scale
    config = config.scaled(factor)
    if duration is not None:
        config = config.replace(duration=duration)
    if not dynamic:
        config = config.replace(dynamic=False, name=f"{config.name}-static")
    return config


#: Default shape of the large-topology stress scenario (ROADMAP item 1:
#: "500+ hosts / 100k+ objects in minutes").
LARGE_TOPOLOGY_NODES = 500
LARGE_TOPOLOGY_OBJECTS = 100_000
LARGE_TOPOLOGY_SEED = 2024


def large_topology_scenario(
    *,
    num_nodes: int = LARGE_TOPOLOGY_NODES,
    num_objects: int = LARGE_TOPOLOGY_OBJECTS,
    duration: float = 120.0,
    seed: int = 1,
    scale: float = DEFAULT_BENCH_SCALE,
) -> tuple[ScenarioConfig, Topology]:
    """A 500-host / 100k-object engine stress scenario, plus its topology.

    The paper's protocol on a synthetic geometric backbone an order of
    magnitude beyond UUNET's 53 nodes.  Batched arrival generation is on
    (it exists for exactly this scale) and everything else keeps Table 1
    semantics via :func:`paper_parameters` + ``scaled``.  Pass both
    returned values to :func:`~repro.scenarios.runner.run_scenario`
    (config, then ``topology=``) — the runner would otherwise build the
    UUNET backbone.
    """
    topology = random_geometric_topology(num_nodes, seed=LARGE_TOPOLOGY_SEED)
    config = paper_parameters().replace(
        name=f"large-{num_nodes}n-{num_objects // 1000}ko",
        workload="zipf",
        num_objects=num_objects,
        duration=duration,
        seed=seed,
        batched_arrivals=True,
    )
    return config.scaled(scale), topology


def partitioned_write_scenario(
    *,
    seed: int = 1,
    scale: float = 0.05,
    duration: float = 240.0,
    num_objects: int = 48,
    write_rate: float = 2.0,
    partition_nodes: tuple[int, ...] = (0, 1, 2, 3),
    partition_at: float = 90.0,
    partition_duration: float = 60.0,
    anti_entropy_interval: float = 10.0,
    epidemic_interval: float | None = None,
) -> ScenarioConfig:
    """A write-heavy zipf run that partitions hot primaries mid-run.

    The fault-consistency demonstration scenario: a small zipf namespace
    (hot objects replicate early), a steady provider write stream, and a
    scheduled partition of the nodes holding the hottest primaries
    (round-robin initial placement puts object ``i`` on node ``i``; the
    zipf head is the low ids).  While the partition holds, writes at the
    isolated primaries cannot reach the majority-side replicas, so
    divergence windows open and stale reads accumulate; after the heal,
    heartbeat recovery plus periodic anti-entropy close every window.

    The partition excludes the board/redirector node (node 14 on the
    seed-1999 UUNET backbone), and no probabilistic faults are enabled:
    partition drops are deterministic, so the expected-behaviour
    assertions (:func:`assert_staleness_behaviour`) hold per-seed.
    """
    config = paper_parameters()
    protocol = config.protocol.replace(
        placement_interval=20.0,
        measurement_interval=5.0,
    )
    faults = FaultConfig(
        enabled=True,
        partitions=((tuple(partition_nodes), partition_at, partition_duration),),
        heartbeat_interval=2.0,
        repair_interval=5.0,
    )
    consistency = ConsistencyConfig(
        write_rate=write_rate,
        anti_entropy_interval=anti_entropy_interval,
        epidemic_interval=epidemic_interval,
    )
    config = config.replace(
        name="partitioned-writes",
        workload="zipf",
        seed=seed,
        duration=duration,
        num_objects=num_objects,
        protocol=protocol,
        faults=faults,
        consistency=consistency,
    )
    return config.scaled(scale)


def assert_staleness_behaviour(
    metrics: dict[str, float],
    config: ScenarioConfig,
    *,
    k: int = 3,
) -> None:
    """Expected-behaviour assertions for a partitioned write scenario.

    The full arc, checked against ``scenario_metrics`` output: writes
    diverged replicas during the partition (stale reads observed,
    divergence windows opened), the failure detector noticed the
    partition, every window closed by end of run with no window
    outliving the partition by more than ``k`` anti-entropy intervals,
    and stale reads stopped by the same convergence deadline.  Raises
    :class:`AssertionError` with the offending metric on violation.

    (Steady-state writes with immediate propagation open and close
    zero-length windows throughout the run, so the convergence bound is
    on window *length* and on when stale reads stop — not on the
    timestamp of the last window closure.  Under epidemic batching,
    reads inside a flush window are stale *by design* for the whole
    run, so the stale-reads-stop check only applies to immediate
    propagation and the window bound widens by one flush period.)
    """
    if not config.faults.partitions:
        raise ConfigurationError("scenario has no partition schedule")
    if config.consistency.anti_entropy_interval is None:
        raise ConfigurationError("scenario has no anti-entropy daemon")
    slack = k * config.consistency.anti_entropy_interval
    heal = max(at + duration for _, at, duration in config.faults.partitions)
    start = min(at for _, at, duration in config.faults.partitions)
    deadline = heal + slack
    assert metrics["stale_reads"] > 0, "expected stale reads during the partition"
    assert metrics["divergence_windows_opened"] > 0, (
        "expected divergence windows to open during the partition"
    )
    assert metrics.get("failure_detections", 0.0) >= 1, (
        "expected the heartbeat detector to notice the partition"
    )
    assert metrics["divergence_windows_open"] == 0, (
        f"{metrics['divergence_windows_open']:g} divergence windows still "
        "open at end of run"
    )
    epidemic = config.consistency.epidemic_interval
    max_window = deadline - start + (epidemic or 0.0)
    assert metrics["divergence_window_max_seconds"] <= max_window, (
        f"a divergence window lasted "
        f"{metrics['divergence_window_max_seconds']:g}s — longer than the "
        f"{max_window:g}s bound (partition span + {k} anti-entropy intervals)"
    )
    if epidemic is None:
        assert metrics["last_stale_read_at"] <= deadline, (
            f"stale read at {metrics['last_stale_read_at']:g}s, after the "
            f"convergence deadline {deadline:g}s (heal at {heal:g}s + "
            f"{k} anti-entropy intervals)"
        )
    assert metrics["stale_read_fraction"] < 0.5, (
        f"stale-read fraction {metrics['stale_read_fraction']:.3f} out of "
        "bounds — staleness should be a partition-window phenomenon"
    )
