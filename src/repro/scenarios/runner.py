"""Build and run one scenario; collect the paper's metrics.

``run_scenario`` is the single entry point used by the examples, the
integration tests and every benchmark: it assembles the simulator, the
synthetic UUNET backbone, the hosting system (or a baseline variant),
the workload generators and the metric collectors, runs to the horizon,
and returns a :class:`ScenarioResult`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.baselines import resolve_strategy
from repro.baselines.closest import ClosestReplicaRedirector
from repro.baselines.round_robin import RoundRobinRedirector
from repro.consistency.plane import ConsistencyPlane
from repro.core.protocol import HostingSystem
from repro.core.redirector import RedirectorService
from repro.errors import ConfigurationError
from repro.failures.injector import FailureInjector
from repro.metrics.adjustment import adjustment_time, equilibrium_level
from repro.metrics.availability import fault_metrics
from repro.metrics.bandwidth import BandwidthCollector
from repro.metrics.latency import LatencyCollector
from repro.metrics.loadstats import LoadCollector
from repro.metrics.replicas import ReplicaCollector
from repro.metrics.staleness import staleness_metrics
from repro.network.faults import FaultPlane
from repro.network.transport import Network
from repro.obs.tracer import DecisionTracer
from repro.routing.routes_db import RoutingDatabase
from repro.scenarios.config import ScenarioConfig
from repro.sim.engine import Simulator
from repro.sim.events import DEFAULT_BUCKET_WIDTH
from repro.sim.rng import RngFactory
from repro.topology.graph import Topology
from repro.topology.uunet import uunet_backbone
from repro.workloads.base import UniformWorkload, Workload, attach_generators
from repro.workloads.writes import ProviderWriteGenerator
from repro.workloads.hot_pages import HotPagesWorkload
from repro.workloads.hot_sites import HotSitesWorkload
from repro.workloads.regional import RegionalWorkload
from repro.workloads.zipf import ZipfWorkload

_DISTRIBUTION_FACTORIES: dict[str, Callable[..., RedirectorService]] = {
    "paper": RedirectorService,
    "round-robin": RoundRobinRedirector,
    "closest": ClosestReplicaRedirector,
}


def make_workload(
    config: ScenarioConfig, topology: Topology, rng_factory: RngFactory
) -> Workload:
    """Instantiate the scenario's workload by name."""
    name = config.workload
    if name == "zipf":
        return ZipfWorkload(config.num_objects)
    if name == "hot-sites":
        return HotSitesWorkload(
            config.num_objects,
            topology.num_nodes,
            split_rng=rng_factory.stream("hot-sites-split"),
        )
    if name == "hot-pages":
        return HotPagesWorkload(
            config.num_objects,
            split_rng=rng_factory.stream("hot-pages-split"),
        )
    if name == "regional":
        return RegionalWorkload(config.num_objects, topology)
    if name == "uniform":
        return UniformWorkload(config.num_objects)
    raise ConfigurationError(f"unknown workload {name!r}")


def auto_bucket_width(config: ScenarioConfig, num_nodes: int) -> float:
    """Event-queue bucket width sized to the scenario's event rate.

    Targets a few hundred entries per near bucket: each request costs
    roughly four scheduler events (arrival, host hop, completion,
    response), so the expected event rate is ``nodes x rate x 4``.  A
    pure performance knob — ordering is exact ``(time, seq)`` at any
    width — overridable via ``config.queue_bucket_width``.
    """
    if config.queue_bucket_width is not None:
        return config.queue_bucket_width
    event_rate = num_nodes * config.node_request_rate * 4.0
    if event_rate <= 0:
        return DEFAULT_BUCKET_WIDTH
    return min(DEFAULT_BUCKET_WIDTH, max(0.002, 256.0 / event_rate))


def build_system(
    config: ScenarioConfig,
    *,
    sim: Simulator | None = None,
    topology: Topology | None = None,
    tracer: DecisionTracer | None = None,
) -> tuple[Simulator, HostingSystem, Workload]:
    """Assemble (but do not run) a scenario's full system.

    ``tracer`` overrides the tracer to attach; with ``config.traced``
    set and no explicit tracer, a fresh :class:`DecisionTracer` of
    ``config.trace_capacity`` is attached (reachable as ``system.tracer``).

    ``config.strategy`` resolves through the baseline registry: its
    build-time overrides (``dynamic``, ``distribution``) are applied
    here and its initial-placement hook, if any, replaces
    ``initialize_round_robin``.  The default "paper" strategy leaves
    every path untouched.
    """
    strategy = resolve_strategy(config.strategy)
    if strategy.overrides:
        config = config.replace(**dict(strategy.overrides))
    topology = topology or uunet_backbone(config.topology_seed)
    if sim is None:
        sim = Simulator(bucket_width=auto_bucket_width(config, topology.num_nodes))
    routes = RoutingDatabase(topology)
    network = Network(
        sim,
        routes,
        hop_delay=config.hop_delay,
        bandwidth=config.bandwidth,
        track_links=config.track_links,
    )
    fault_plane = None
    if config.faults.enabled:
        fault_plane = FaultPlane(
            config.faults, RngFactory(config.seed).stream("faults")
        )
        for nodes, at, duration in config.faults.partitions:
            fault_plane.schedule_partition(sim, nodes, at, duration)
    system = HostingSystem(
        sim,
        network,
        config.protocol,
        num_objects=config.num_objects,
        object_size=config.object_size,
        capacity=config.capacity,
        redirector_factory=_DISTRIBUTION_FACTORIES[config.distribution],
        enable_placement=config.dynamic,
        fault_plane=fault_plane,
    )
    if tracer is None and config.traced:
        tracer = DecisionTracer(capacity=config.trace_capacity)
    if tracer is not None:
        system.attach_tracer(tracer)
    if config.consistency.enabled:
        # Before initialize_round_robin(), so the primary-copy manager
        # observes the initial registrations (original copy = primary).
        system.consistency_plane = ConsistencyPlane(
            system,
            config.consistency,
            rng=RngFactory(config.seed).stream("consistency"),
        )
    if strategy.initial_placement is not None:
        strategy.initial_placement(system, config)
    else:
        system.initialize_round_robin()
    rng_factory = RngFactory(config.seed)
    workload = make_workload(config, topology, rng_factory)
    return sim, system, workload


@dataclass
class ScenarioResult:
    """Everything measured during one scenario run."""

    config: ScenarioConfig
    system: HostingSystem
    bandwidth: BandwidthCollector
    latency: LatencyCollector
    loads: LoadCollector
    replicas: ReplicaCollector
    #: The attached :class:`DecisionTracer` (None when the run was untraced).
    trace: DecisionTracer | None = None
    #: The failure injector that drove scheduled outages (None unless the
    #: scenario's fault config scheduled any).
    injector: FailureInjector | None = None
    #: The strategy's attached placer (None unless ``config.strategy``
    #: declares one, e.g. availability-aware).
    placer: object | None = None

    # -- Figure 6 -------------------------------------------------------

    def bandwidth_start(self) -> float:
        """Payload byte-hops in the first bucket (the static level)."""
        series = self.bandwidth.payload_series()
        if len(series) < 2:
            raise ConfigurationError("run too short for bandwidth statistics")
        # The first bucket is partially filled by generator phase offsets;
        # average the first two complete-ish buckets for a stable start.
        return max(series.values[0], series.values[1])

    def bandwidth_equilibrium(self) -> float:
        return equilibrium_level(self.bandwidth.payload_series())

    def bandwidth_reduction(self) -> float:
        """Relative payload-bandwidth reduction, start to equilibrium."""
        start = self.bandwidth_start()
        return 1.0 - self.bandwidth_equilibrium() / start if start else 0.0

    def latency_equilibrium(self) -> float:
        return equilibrium_level(self.latency.mean_latency_series())

    def latency_start(self) -> float:
        series = self.latency.mean_latency_series()
        if len(series) < 2:
            raise ConfigurationError("run too short for latency statistics")
        return max(series.values[0], series.values[1])

    def latency_reduction(self) -> float:
        start = self.latency_start()
        return 1.0 - self.latency_equilibrium() / start if start else 0.0

    def proximity_reduction(self) -> float:
        """Relative reduction in mean response hops, start to equilibrium.

        The bandwidth ratio per *serviced* request — immune to the early
        throughput suppression a saturated host causes in the raw
        byte-hop series (relevant to hot-sites, where the paper's own
        initial latencies are tens of seconds).
        """
        series = self.latency.mean_response_hops_series()
        if len(series) < 2:
            raise ConfigurationError("run too short for hop statistics")
        start = max(series.values[0], series.values[1])
        return 1.0 - equilibrium_level(series) / start if start else 0.0

    # -- Figure 7 -------------------------------------------------------

    def overhead_fraction(self) -> float:
        return self.bandwidth.overhead_fraction()

    def overhead_fraction_fullscale(self) -> float:
        """Overhead share corrected to full-scale payload volume.

        Relocation traffic (objects moved per placement round) does not
        scale with the load axis, while payload traffic does; a run at
        load scale ``f`` therefore inflates the overhead *fraction* by
        roughly ``1/f``.  This reports the fraction the same placement
        activity would represent against full-scale payload traffic —
        the quantity comparable to the paper's Figure 7.
        """
        scale = self.config.load_scale
        overhead = self.bandwidth.overhead_byte_hops()
        payload = self.bandwidth.total_byte_hops() - overhead
        if payload <= 0:
            return 0.0
        return overhead / (overhead + payload / scale)

    def max_overhead_fraction(self) -> float:
        series = self.bandwidth.overhead_fraction_series()
        return series.max() if len(series) else 0.0

    # -- Figure 8 -------------------------------------------------------

    def max_load(self) -> float:
        return self.loads.max_load()

    def max_load_settled(self) -> float:
        """Max load after the first quarter of the run (post-adjustment)."""
        return self.loads.max_load_after(self.config.duration * 0.25)

    # -- Table 2 --------------------------------------------------------

    def adjustment_time(self) -> float:
        return adjustment_time(self.bandwidth.payload_series())

    def replicas_per_object(self) -> float:
        return self.replicas.equilibrium_replicas_per_object()


#: Metric names :func:`scenario_metrics` always emits (series-derived
#: metrics are additionally present when the run spans >= 2 buckets).
SCALAR_METRICS = (
    "requests_completed",
    "requests_dropped",
    "relocations",
    "replica_drops",
    "max_load",
    "max_load_settled",
    "replicas_per_object",
    "overhead_fraction",
    "overhead_fraction_fullscale",
)

#: Metrics derived from the bucketed time series; absent from
#: :func:`scenario_metrics` output when the run is too short for them.
SERIES_METRICS = (
    "bandwidth_reduction",
    "proximity_reduction",
    "latency_equilibrium",
    "latency_reduction",
    "adjustment_time",
)


def scenario_metrics(result: ScenarioResult) -> dict[str, float]:
    """Flatten a run's headline measurements into a JSON-safe scalar dict.

    This is the per-run payload of the sweep engine: everything a
    worker process ships back to the parent (the :class:`ScenarioResult`
    itself holds the whole simulator and never crosses the process
    boundary).  Series-derived metrics that need at least two buckets
    are silently omitted on runs too short to compute them.
    """
    events = result.system.placement_events
    metrics: dict[str, float] = {
        "requests_completed": float(result.latency.completed),
        "requests_dropped": float(result.latency.dropped),
        "relocations": float(len(events)),
        "replica_drops": float(
            sum(1 for e in events if e.action.value == "drop")
        ),
        "max_load": result.max_load(),
        "max_load_settled": result.max_load_settled(),
        "replicas_per_object": result.replicas_per_object(),
        "overhead_fraction": result.overhead_fraction(),
        "overhead_fraction_fullscale": result.overhead_fraction_fullscale(),
    }
    series_derived: dict[str, Callable[[], float]] = {
        "bandwidth_reduction": result.bandwidth_reduction,
        "proximity_reduction": result.proximity_reduction,
        "latency_equilibrium": result.latency_equilibrium,
        "latency_reduction": result.latency_reduction,
        "adjustment_time": result.adjustment_time,
    }
    for name, compute in series_derived.items():
        try:
            metrics[name] = compute()
        except ConfigurationError:
            pass
    if result.system.fault_plane is not None:
        # Fault-plane scalars only exist on faulted runs, so fault-free
        # metric dicts (and their spec hashes / baselines) are unchanged.
        metrics.update(fault_metrics(result.system, result.config.duration))
        if result.injector is not None:
            metrics["host_failures"] = float(
                sum(1 for e in result.injector.events if e.failed)
            )
    if result.system.consistency_plane is not None:
        # Staleness scalars only exist on consistency-enabled runs, so
        # write-free metric dicts (and their baselines) are unchanged.
        metrics.update(staleness_metrics(result.system, result.config.duration))
    return metrics


def run_scenario_metrics(config: ScenarioConfig) -> dict[str, float]:
    """Run one scenario and return only its scalar metrics.

    Module-level (hence picklable) on purpose: this is the function the
    sweep executor runs inside worker processes.
    """
    return scenario_metrics(run_scenario(config))


def run_scenario(
    config: ScenarioConfig,
    *,
    topology: Topology | None = None,
    tracer: DecisionTracer | None = None,
    request_observers: tuple = (),
    measurement_observers: tuple = (),
) -> ScenarioResult:
    """Run a scenario start-to-finish and return its measurements.

    ``request_observers`` / ``measurement_observers`` are extra callbacks
    attached to the system before it starts (see
    ``HostingSystem.request_observers``); the optimality-gap harness uses
    them to record the demand trace.  Defaults leave the run untouched.
    """
    strategy = resolve_strategy(config.strategy)
    sim, system, workload = build_system(config, topology=topology, tracer=tracer)
    system.request_observers.extend(request_observers)
    system.measurement_observers.extend(measurement_observers)
    bandwidth = BandwidthCollector(system.network, bucket=config.bucket)
    latency = LatencyCollector(
        system, bucket=config.bucket, keep_samples=config.keep_latency_samples
    )
    loads = LoadCollector(system)
    replicas = ReplicaCollector(system, sample_interval=config.bucket)
    faults = config.faults
    injector: FailureInjector | None = None
    if faults.enabled and (faults.outages or faults.mtbf is not None):
        injector = FailureInjector(sim, system)
        for node, at, outage_duration in faults.outages:
            injector.schedule_outage(node, at, outage_duration)
        if faults.mtbf is not None and faults.mttr is not None:
            injector.schedule_random_outages(
                RngFactory(config.seed).stream("outages"),
                mtbf=faults.mtbf,
                mttr=faults.mttr,
                horizon=config.duration,
            )
    system.start()
    placer = None
    if strategy.attach is not None:
        placer = strategy.attach(system, config)
        placer.start()
    if config.fast_lane:
        # After every observer/placer attachment (the eligibility check
        # sees the final configuration), before the generators capture
        # the submit_request entry point.  A no-op when blocked.
        system.enable_fast_lane(bandwidth=bandwidth, latency=latency)
    generators = attach_generators(
        sim,
        system,
        workload,
        config.node_request_rate,
        RngFactory(config.seed),
        poisson=config.poisson,
        batched=config.batched_arrivals,
        window=config.protocol.measurement_interval,
    )
    writer: ProviderWriteGenerator | None = None
    if system.consistency_plane is not None and config.consistency.write_rate > 0:
        writer = ProviderWriteGenerator(
            sim,
            system.consistency_plane,
            workload,
            config.consistency.write_rate,
            RngFactory(config.seed).stream("writes"),
            poisson=config.poisson,
        )
    sim.run(until=config.duration)
    for generator in generators:
        generator.stop()
    if writer is not None:
        writer.stop()
    if placer is not None:
        placer.stop()
    system.stop()
    if system.fast_lane is not None:
        # Fold the lane's aggregated byte-hop accounting into the
        # bandwidth collector and transport totals before anyone reads.
        system.fast_lane.flush()
    replicas.stop()
    loads.finalize()
    if config.check_invariants:
        system.check_invariants()
    return ScenarioResult(
        config=config,
        system=system,
        bandwidth=bandwidth,
        latency=latency,
        loads=loads,
        replicas=replicas,
        trace=system.tracer,
        injector=injector,
        placer=placer,
    )
