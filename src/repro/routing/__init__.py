"""Routing databases and preference paths.

Section 2 of the paper: replica-placement heuristics are driven by the
routes messages take from a host to a client.  A host knows, for each
client (gateway in the simulation model), the *preference path* — the
sequence of hosts co-located with the routers on the route — "statically
extracted (and periodically refreshed) from the routing database kept by
the platform routers".

:mod:`repro.routing.shortest_path` computes deterministic all-pairs
shortest paths (when several equal-length routes exist, "one path is
chosen for all requests" — we pick the lexicographically smallest, fixed
per source/destination pair).  :class:`repro.routing.routes_db.RoutingDatabase`
packages lookups, distance comparisons, and optional staleness modelling.
"""

from repro.routing.hashring import HashRing
from repro.routing.placement_opt import greedy_k_median, mean_detour
from repro.routing.routes_db import RoutingDatabase
from repro.routing.shortest_path import all_pairs_shortest_paths

__all__ = [
    "HashRing",
    "RoutingDatabase",
    "all_pairs_shortest_paths",
    "greedy_k_median",
    "mean_detour",
]
