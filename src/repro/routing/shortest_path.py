"""Deterministic all-pairs shortest paths over a backbone topology.

All backbone links are identical (Table 1: a uniform per-hop delay and
bandwidth), so shortest paths are breadth-first paths by hop count.  The
paper notes that "when there are equidistant paths between nodes i and j,
one path is chosen for all requests from i to j".  *Which* equal-length
path is chosen matters more than it looks: a global lexicographic rule
funnels every tie in the network through the lowest-numbered routers,
manufacturing artificial concentration on a handful of nodes (every
spoke's traffic would ride a single parent, which turns the placement
algorithm's >60% migration test into a one-way pump toward hubs).  Real
backbones hash ties per destination prefix (ECMP), so different
destinations ride different equal-cost parents.  We reproduce that: ties
are broken by a deterministic hash of ``(source, target, candidate)``,
fixed for all time — the same pair always uses the same path, but
different pairs split across the equal-cost options.
"""

from __future__ import annotations

import hashlib
from collections import deque

from repro.errors import RoutingError
from repro.topology.graph import Topology
from repro.types import NodeId


def _tie_key(source: NodeId, target: NodeId, candidate: NodeId) -> int:
    digest = hashlib.blake2b(
        f"{source}:{target}:{candidate}".encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


def _bfs_dag(
    topology: Topology, source: NodeId
) -> tuple[list[int], list[list[int]]]:
    """BFS from ``source`` keeping *all* shortest-path predecessors.

    Returns ``(dist, parents)`` where ``parents[v]`` lists every
    neighbour of ``v`` lying on some shortest path from ``source``.
    """
    n = topology.num_nodes
    dist = [-1] * n
    parents: list[list[int]] = [[] for _ in range(n)]
    dist[source] = 0
    queue: deque[int] = deque([source])
    while queue:
        node = queue.popleft()
        for neighbor in topology.neighbors(node):
            if dist[neighbor] == -1:
                dist[neighbor] = dist[node] + 1
                parents[neighbor].append(node)
                queue.append(neighbor)
            elif dist[neighbor] == dist[node] + 1:
                parents[neighbor].append(node)
    return dist, parents


def all_pairs_shortest_paths(
    topology: Topology,
) -> tuple[list[list[int]], dict[tuple[NodeId, NodeId], tuple[NodeId, ...]]]:
    """Compute hop distances and one canonical path per ordered pair.

    Returns
    -------
    (dist, paths):
        ``dist[i][j]`` is the hop count between ``i`` and ``j``;
        ``paths[(i, j)]`` is the canonical node sequence from ``i`` to
        ``j`` inclusive of both endpoints (``(i,)`` when ``i == j``).
        Among equal-length paths, the hashed ECMP-style tie-break picks
        one deterministically per ``(i, j)`` pair.

    Raises :class:`RoutingError` if the topology is disconnected (which
    :class:`~repro.topology.graph.Topology` normally prevents).
    """
    n = topology.num_nodes
    dist_matrix: list[list[int]] = []
    paths: dict[tuple[NodeId, NodeId], tuple[NodeId, ...]] = {}
    for source in range(n):
        dist, parents = _bfs_dag(topology, source)
        if any(d == -1 for d in dist):
            raise RoutingError(f"topology disconnected from node {source}")
        dist_matrix.append(dist)
        for target in range(n):
            chain = [target]
            node = target
            while node != source:
                options = parents[node]
                if len(options) == 1:
                    node = options[0]
                else:
                    node = min(
                        options, key=lambda p: _tie_key(source, target, p)
                    )
                chain.append(node)
            chain.reverse()
            paths[(source, target)] = tuple(chain)
    return dist_matrix, paths
