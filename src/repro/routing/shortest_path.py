"""Deterministic shortest paths over a backbone topology.

All backbone links are identical (Table 1: a uniform per-hop delay and
bandwidth), so shortest paths are breadth-first paths by hop count.  The
paper notes that "when there are equidistant paths between nodes i and j,
one path is chosen for all requests from i to j".  *Which* equal-length
path is chosen matters more than it looks: a global lexicographic rule
funnels every tie in the network through the lowest-numbered routers,
manufacturing artificial concentration on a handful of nodes (every
spoke's traffic would ride a single parent, which turns the placement
algorithm's >60% migration test into a one-way pump toward hubs).  Real
backbones hash ties per destination prefix (ECMP), so different
destinations ride different equal-cost parents.  We reproduce that: ties
are broken by a deterministic hash of ``(source, target, candidate)``,
fixed for all time — the same pair always uses the same path, but
different pairs split across the equal-cost options.

Laziness
--------
Distances (the hot per-request quantity) are computed eagerly: one BFS
per source over plain adjacency lists.  Canonical *paths* are only walked
on first use and cached per ordered pair: at 500 nodes the eager variant
spends seconds hashing ~n³ tie-break candidates for 250k paths of which a
scenario touches a tiny, workload-dependent subset (the request fast lane
defers preference-path expansion to placement time, so short benchmark
runs touch none at all).  The choice per pair depends only on the
shortest-path DAG and the hash — never on when, or in what order, paths
are materialised — so lazy and eager construction yield byte-identical
routes.
"""

from __future__ import annotations

import hashlib
from collections import deque

from repro.errors import RoutingError
from repro.topology.graph import Topology
from repro.types import NodeId


def _tie_key(source: NodeId, target: NodeId, candidate: NodeId) -> int:
    digest = hashlib.blake2b(
        f"{source}:{target}:{candidate}".encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


class ShortestPathIndex:
    """Per-source BFS DAGs with lazily materialised canonical paths.

    ``dist_matrix[i][j]`` is the hop count between ``i`` and ``j``;
    :meth:`path` walks (and caches) the canonical node sequence for one
    ordered pair using the hashed ECMP-style tie-break.  The index is
    effectively immutable — the cache only ever fills in values that are
    a pure function of the topology — so it is safe to share between a
    routing database and its snapshots.
    """

    __slots__ = ("dist_matrix", "_parents", "_paths")

    def __init__(self, topology: Topology) -> None:
        n = topology.num_nodes
        adjacency = [list(topology.neighbors(node)) for node in range(n)]
        dist_matrix: list[list[int]] = []
        all_parents: list[list[list[int]]] = []
        for source in range(n):
            dist = [-1] * n
            parents: list[list[int]] = [[] for _ in range(n)]
            dist[source] = 0
            queue: deque[int] = deque([source])
            while queue:
                node = queue.popleft()
                next_dist = dist[node] + 1
                for neighbor in adjacency[node]:
                    d = dist[neighbor]
                    if d == -1:
                        dist[neighbor] = next_dist
                        parents[neighbor].append(node)
                        queue.append(neighbor)
                    elif d == next_dist:
                        parents[neighbor].append(node)
            if -1 in dist:
                raise RoutingError(f"topology disconnected from node {source}")
            dist_matrix.append(dist)
            all_parents.append(parents)
        self.dist_matrix = dist_matrix
        self._parents = all_parents
        self._paths: dict[tuple[NodeId, NodeId], tuple[NodeId, ...]] = {}

    def path(self, source: NodeId, target: NodeId) -> tuple[NodeId, ...]:
        """The canonical ``source -> target`` node sequence, inclusive."""
        key = (source, target)
        cached = self._paths.get(key)
        if cached is not None:
            return cached
        parents = self._parents[source]
        chain = [target]
        node = target
        while node != source:
            options = parents[node]
            if len(options) == 1:
                node = options[0]
            else:
                node = min(options, key=lambda p: _tie_key(source, target, p))
            chain.append(node)
        chain.reverse()
        path = tuple(chain)
        self._paths[key] = path
        return path


def all_pairs_shortest_paths(
    topology: Topology,
) -> tuple[list[list[int]], dict[tuple[NodeId, NodeId], tuple[NodeId, ...]]]:
    """Compute hop distances and one canonical path per ordered pair.

    Returns
    -------
    (dist, paths):
        ``dist[i][j]`` is the hop count between ``i`` and ``j``;
        ``paths[(i, j)]`` is the canonical node sequence from ``i`` to
        ``j`` inclusive of both endpoints (``(i,)`` when ``i == j``).
        Among equal-length paths, the hashed ECMP-style tie-break picks
        one deterministically per ``(i, j)`` pair.

    Raises :class:`RoutingError` if the topology is disconnected (which
    :class:`~repro.topology.graph.Topology` normally prevents).

    This eager variant exists for analysis tooling and tests; the
    simulator routes through :class:`ShortestPathIndex`, which walks the
    same DAGs lazily and produces byte-identical paths.
    """
    index = ShortestPathIndex(topology)
    n = topology.num_nodes
    for source in range(n):
        for target in range(n):
            index.path(source, target)
    return index.dist_matrix, dict(index._paths)
