"""Redirector placement optimisation.

The paper co-locates its single redirector "with a node whose average
distance in hops to other nodes is minimum" and notes: "In future, we
plan to explore the problem of optimally placing redirectors for
different objects in order to minimize the added latency due to them"
(Section 6.1).  This module implements that future work: greedy k-median
placement of redirector nodes, which minimises the mean gateway-to-
redirector detour when the namespace is hash-partitioned across ``k``
redirectors.

Greedy k-median carries the classic (1 - 1/e)-style approximation
behaviour in practice; for the backbone sizes here (tens of nodes) it is
within a few percent of optimal and costs O(k * n^2).
"""

from __future__ import annotations

from repro.errors import RoutingError
from repro.routing.routes_db import RoutingDatabase
from repro.types import NodeId


def mean_detour(routes: RoutingDatabase, centers: list[NodeId]) -> float:
    """Mean hop distance from a node to its closest center."""
    if not centers:
        raise RoutingError("need at least one center")
    n = routes.num_nodes
    total = 0
    for node in range(n):
        row = routes.distance_row(node)
        total += min(row[center] for center in centers)
    return total / n


def greedy_k_median(routes: RoutingDatabase, k: int) -> list[NodeId]:
    """Pick ``k`` redirector nodes greedily minimising the mean detour.

    The first pick is exactly the paper's heuristic (the min-mean-distance
    node); each subsequent pick is the node that most reduces the mean
    distance to the closest chosen center.  Ties break toward smaller
    node ids for determinism.
    """
    n = routes.num_nodes
    if not 1 <= k <= n:
        raise RoutingError(f"k must be in [1, {n}], got {k}")
    centers: list[NodeId] = []
    # Distance to the closest chosen center, per node.
    best = [float("inf")] * n
    for _ in range(k):
        best_node: NodeId | None = None
        best_cost = float("inf")
        for candidate in range(n):
            if candidate in centers:
                continue
            row = routes.distance_row(candidate)
            cost = sum(min(best[node], row[node]) for node in range(n))
            if cost < best_cost:
                best_cost = cost
                best_node = candidate
        assert best_node is not None
        centers.append(best_node)
        row = routes.distance_row(best_node)
        for node in range(n):
            if row[node] < best[node]:
                best[node] = row[node]
    return centers


def assign_partitions(
    routes: RoutingDatabase, centers: list[NodeId], num_objects: int
) -> dict[int, NodeId]:
    """Balanced object-to-redirector assignment over the chosen centers.

    Keeps the paper's stable hash partition (``obj mod k``) but maps each
    partition to a center; returns the partition table for inspection.
    """
    if not centers:
        raise RoutingError("need at least one center")
    return {
        partition: centers[partition % len(centers)]
        for partition in range(min(num_objects, len(centers)))
    }
