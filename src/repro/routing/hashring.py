"""Consistent-hash partitioning of the object namespace across shards.

The sharded live redirector tier (DESIGN §10) splits the replica
registry by *object id*: every object has exactly one owning shard, and
every control-plane conversation about an object (``replica_created``,
``affinity_reduced``, drop arbitration) must land on that owner.  The
mapping therefore has to be

* **deterministic across processes** — the gateway, every shard, the
  load generator and the tests each rebuild the ring independently from
  the deployment config and must agree on every key.  Hashes come from
  :mod:`hashlib` (never :func:`hash`, which is salted per process);
* **stable under resharding** — growing the tier from *n* to *n+1*
  shards must move only ~``1/(n+1)`` of the keys, so a rebalance does
  not invalidate the whole registry.

Classic consistent hashing: each shard contributes ``vnodes`` points on
a 64-bit ring, a key is owned by the first point at or clockwise after
its own hash.  Instances are immutable; :meth:`with_shard` /
:meth:`without_shard` build resized rings for rebalance planning.
"""

from __future__ import annotations

import bisect
import hashlib
from collections.abc import Iterable

from repro.errors import ConfigurationError

#: Default virtual nodes per shard.  128 points per shard keeps the
#: per-shard key share within a few percent of 1/n for small tiers
#: while the ring stays tiny (n * 128 sorted ints).
DEFAULT_VNODES = 128


def _hash64(data: str) -> int:
    """A stable 64-bit ring position (sha1, process-independent)."""
    return int.from_bytes(hashlib.sha1(data.encode("ascii")).digest()[:8], "big")


class HashRing:
    """Immutable consistent-hash ring mapping keys to shard ids."""

    __slots__ = ("_points", "_owners", "shards", "vnodes")

    def __init__(self, shards: int | Iterable[int], *, vnodes: int = DEFAULT_VNODES) -> None:
        if isinstance(shards, int):
            if shards < 1:
                raise ConfigurationError("a ring needs at least one shard")
            shard_ids: tuple[int, ...] = tuple(range(shards))
        else:
            shard_ids = tuple(sorted(set(shards)))
            if not shard_ids:
                raise ConfigurationError("a ring needs at least one shard")
        if vnodes < 1:
            raise ConfigurationError("vnodes must be at least 1")
        self.shards = shard_ids
        self.vnodes = vnodes
        points = []
        for shard in shard_ids:
            for vnode in range(vnodes):
                points.append((_hash64(f"shard:{shard}:vnode:{vnode}"), shard))
        points.sort()
        self._points = [position for position, _ in points]
        self._owners = [shard for _, shard in points]

    def owner(self, key: int | str) -> int:
        """The shard owning ``key`` (first point clockwise of its hash)."""
        position = _hash64(f"key:{key}")
        index = bisect.bisect_right(self._points, position)
        if index == len(self._points):  # wrap past the top of the ring
            index = 0
        return self._owners[index]

    def owned_by(self, shard: int, keys: Iterable[int | str]) -> list:
        """The subset of ``keys`` owned by ``shard`` (order preserved)."""
        return [key for key in keys if self.owner(key) == shard]

    def with_shard(self, shard: int) -> "HashRing":
        """A new ring with ``shard`` added (for rebalance planning)."""
        return HashRing([*self.shards, shard], vnodes=self.vnodes)

    def without_shard(self, shard: int) -> "HashRing":
        """A new ring with ``shard`` removed."""
        return HashRing(
            [s for s in self.shards if s != shard], vnodes=self.vnodes
        )

    def __len__(self) -> int:
        return len(self.shards)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, HashRing):
            return NotImplemented
        return self.shards == other.shards and self.vnodes == other.vnodes

    def __hash__(self) -> int:
        return hash((self.shards, self.vnodes))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HashRing(shards={self.shards}, vnodes={self.vnodes})"


__all__ = ["DEFAULT_VNODES", "HashRing"]
