"""The routing database: distances, routes and preference paths.

One :class:`RoutingDatabase` instance models the information the paper's
protocol extracts from the platform routers (Section 2):

* hop distances between any two platform nodes,
* the canonical route (and hence the *preference path*) between nodes,
* helper orderings (closest replica to a gateway, farthest-first candidate
  ordering) used by the request-distribution and placement algorithms.

Distances are computed eagerly (one BFS per source); canonical paths are
materialised lazily per ordered pair on first use — see
:class:`~repro.routing.shortest_path.ShortestPathIndex` for why this is
byte-identical to eager construction.

Staleness: the paper extracts routes "asynchronously with client requests,
thereby reducing request latency at the expense of potential staleness".
:meth:`RoutingDatabase.snapshot` returns a frozen copy so scenarios can
model stale routing views refreshed by a periodic process, while the live
instance always reflects the current topology.
"""

from __future__ import annotations

from repro.errors import RoutingError
from repro.routing.shortest_path import ShortestPathIndex
from repro.topology.graph import Topology
from repro.types import NodeId


class RoutingDatabase:
    """Precomputed deterministic routes over a topology."""

    def __init__(self, topology: Topology) -> None:
        self._topology = topology
        self._index = ShortestPathIndex(topology)
        self._dist = self._index.dist_matrix
        self._row_sums: list[int] | None = None

    @property
    def topology(self) -> Topology:
        return self._topology

    @property
    def num_nodes(self) -> int:
        return self._topology.num_nodes

    def distance(self, a: NodeId, b: NodeId) -> int:
        """Hop count between two platform nodes."""
        try:
            return self._dist[a][b]
        except IndexError:
            raise RoutingError(f"unknown node in distance({a}, {b})") from None

    def distance_row(self, node: NodeId) -> list[int]:
        """The full distance row of ``node`` (read-only; hot-path helper)."""
        return self._dist[node]

    def route(self, source: NodeId, target: NodeId) -> tuple[NodeId, ...]:
        """The canonical route from ``source`` to ``target``, inclusive.

        All messages between the pair take this route ("one path is chosen
        for all requests from i to j").
        """
        try:
            return self._index.path(source, target)
        except IndexError:
            raise RoutingError(f"no route {source} -> {target}") from None

    def preference_path(self, server: NodeId, client: NodeId) -> tuple[NodeId, ...]:
        """Hosts on the route a response takes from ``server`` to ``client``.

        Per Section 2, the preference path from host ``s`` to client ``c``
        is the sequence of hosts co-located with the routers on the
        ``s -> c`` route; hosts are not distinguished from their routers.
        Both endpoints are included: the serving host trivially appears on
        every one of its own preference paths (so ``cnt(s, x_s)`` equals
        the total access count), and the path's last element is the
        gateway closest to the client.
        """
        return self.route(server, client)

    def hops(self, source: NodeId, target: NodeId) -> int:
        """Number of backbone links traversed between the nodes."""
        return self.distance(source, target)

    def closest(self, to: NodeId, candidates: list[NodeId]) -> NodeId:
        """The candidate closest to ``to`` (ties broken by node id)."""
        if not candidates:
            raise RoutingError("closest() needs at least one candidate")
        row = self._dist[to]
        return min(candidates, key=lambda node: (row[node], node))

    def farthest_first(
        self, frm: NodeId, candidates: list[NodeId]
    ) -> list[NodeId]:
        """Candidates ordered by decreasing distance from ``frm``.

        The placement algorithm "attempts to place the replica on the
        farthest among all qualified candidates" (Section 4.2.1); ties are
        broken by ascending node id for determinism.
        """
        row = self._dist[frm]
        return sorted(candidates, key=lambda node: (-row[node], node))

    def _distance_row_sums(self) -> list[int]:
        """Per-node distance-row totals, computed once and cached."""
        sums = self._row_sums
        if sums is None:
            sums = self._row_sums = [sum(row) for row in self._dist]
        return sums

    def min_mean_distance_node(self) -> NodeId:
        """The node with minimum mean hop distance to all other nodes.

        The paper co-locates the redirector "with a node whose average
        distance in hops to other nodes is minimum" (Section 6.1).
        """
        sums = self._distance_row_sums()
        best_node = 0
        best_total = sums[0]
        for node in range(1, self.num_nodes):
            total = sums[node]
            if total < best_total:
                best_total = total
                best_node = node
        return best_node

    def mean_distance(self) -> float:
        """Mean hop distance over all ordered pairs of distinct nodes."""
        n = self.num_nodes
        if n < 2:
            return 0.0
        return sum(self._distance_row_sums()) / (n * (n - 1))

    def snapshot(self) -> "RoutingDatabase":
        """A frozen copy of the current routes (staleness modelling).

        The path index is shared: it is a pure function of the (immutable)
        topology, so the clone sees exactly the routes the original does.
        """
        clone = object.__new__(RoutingDatabase)
        clone._topology = self._topology
        clone._index = self._index
        clone._dist = [row[:] for row in self._dist]
        clone._row_sums = None
        return clone
