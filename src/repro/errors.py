"""Exception hierarchy for the :mod:`repro` package.

All library-raised exceptions derive from :class:`ReproError` so that
callers can catch everything the library throws with a single handler
while still being able to discriminate by subsystem.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by this library."""


class SimulationError(ReproError):
    """Raised for misuse of the discrete-event simulation engine."""


class TopologyError(ReproError):
    """Raised for malformed or unusable backbone topologies."""


class RoutingError(ReproError):
    """Raised when a route lookup cannot be satisfied."""


class ProtocolError(ReproError):
    """Raised for violations of the replication-protocol state machine."""


class ConfigurationError(ReproError):
    """Raised for invalid protocol or scenario configuration values."""


class ConsistencyError(ReproError):
    """Raised for replica-consistency violations (Section 5 machinery)."""


class WorkloadError(ReproError):
    """Raised for invalid workload specifications."""
