"""Cross-seed statistics for scenario metrics.

The paper reports single runs; for statements like "bandwidth reduction
is 50 ± 2% across seeds" the benchmarks and users can run a metric over
several seeds and summarise with a mean and a Student-t confidence
interval (normal-approximation fallback when SciPy is unavailable — it
is installed in this environment, but the library should not hard-depend
on it).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.errors import ConfigurationError
from repro.scenarios.config import ScenarioConfig
from repro.scenarios.runner import ScenarioResult, run_scenario

#: Two-sided 95% Student-t critical values for small sample sizes
#: (df 1..30); beyond that the normal value 1.96 is a fine approximation.
_T95 = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
    2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
    2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
]


@dataclass(frozen=True, slots=True)
class MetricSummary:
    """Mean, standard deviation and a 95% confidence half-width."""

    values: tuple[float, ...]
    mean: float
    stdev: float
    ci95: float

    @property
    def low(self) -> float:
        return self.mean - self.ci95

    @property
    def high(self) -> float:
        return self.mean + self.ci95

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.mean:.4g} ± {self.ci95:.2g} (n={len(self.values)})"


def summarize(values: Sequence[float]) -> MetricSummary:
    """Summarise a sample with a 95% t-interval on the mean."""
    if not values:
        raise ConfigurationError("cannot summarise an empty sample")
    n = len(values)
    mean = sum(values) / n
    if n == 1:
        return MetricSummary(tuple(values), mean, 0.0, 0.0)
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    stdev = math.sqrt(variance)
    t = _T95[n - 2] if n - 1 <= len(_T95) else 1.96
    return MetricSummary(tuple(values), mean, stdev, t * stdev / math.sqrt(n))


def across_seeds(
    config: ScenarioConfig,
    metric: Callable[[ScenarioResult], float],
    *,
    seeds: Sequence[int],
) -> MetricSummary:
    """Run a scenario once per seed and summarise ``metric`` across runs."""
    if not seeds:
        raise ConfigurationError("need at least one seed")
    values = [
        metric(run_scenario(config.replace(seed=seed))) for seed in seeds
    ]
    return summarize(values)
