"""Analysis helpers: equilibrium detection, paper tables and figures.

:mod:`~repro.analysis.steady_state` detects whether/when a metric series
settled; :mod:`~repro.analysis.tables` assembles Table 2 rows
(adjustment time, mean replicas) from scenario results;
:mod:`~repro.analysis.figures` extracts the exact series each paper
figure plots, in a renderer-independent form the benchmark harness
prints and tests assert against.
"""

from repro.analysis.export import export_result_csv
from repro.analysis.links import (
    class_byte_shares,
    hottest_links,
    link_reports,
    traffic_concentration,
)
from repro.analysis.figures import (
    figure6_series,
    figure7_series,
    figure8_series,
)
from repro.analysis.stats import across_seeds, summarize
from repro.analysis.steady_state import is_settled, settle_time
from repro.analysis.tables import table1_rows, table2_row, table2_rows

__all__ = [
    "is_settled",
    "settle_time",
    "table1_rows",
    "table2_row",
    "table2_rows",
    "figure6_series",
    "figure7_series",
    "figure8_series",
    "export_result_csv",
    "across_seeds",
    "summarize",
    "link_reports",
    "hottest_links",
    "traffic_concentration",
    "class_byte_shares",
]
