"""Equilibrium detection for metric time series.

The paper's Table 2 defines the adjustment time against "the average
equilibrium bandwidth consumption"; these helpers generalise that:
``is_settled`` decides whether a series' tail is stable enough to call an
equilibrium at all (guarding the benchmarks against reading statistics
off a run that has not converged), and ``settle_time`` is the shared
envelope-crossing computation (re-exported by :mod:`repro.metrics.
adjustment` with the paper's 10% margin as the default).
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.metrics.adjustment import adjustment_time, equilibrium_level
from repro.metrics.collectors import TimeSeries
from repro.types import Time


def is_settled(
    series: TimeSeries,
    *,
    tail: float = 0.25,
    tolerance: float = 0.15,
) -> bool:
    """Whether the series' tail fluctuates within ``tolerance`` of its mean.

    Uses the max absolute deviation of the tail from the tail mean; an
    all-zero tail counts as settled (a flat line is an equilibrium).
    """
    if len(series) < 4:
        return False
    level = equilibrium_level(series, tail=tail)
    count = max(1, int(len(series) * tail))
    tail_values = series.values[-count:]
    if level == 0:
        return all(value == 0 for value in tail_values)
    return all(abs(value - level) / abs(level) <= tolerance for value in tail_values)


def settle_time(
    series: TimeSeries,
    *,
    margin: float = 0.10,
    tail: float = 0.25,
) -> Time:
    """Alias for the Table 2 adjustment-time computation."""
    return adjustment_time(series, margin=margin, tail=tail)


def relative_change(before: float, after: float) -> float:
    """Signed relative change from ``before`` to ``after``.

    Positive means ``after`` is larger.  Raises on a zero baseline.
    """
    if before == 0:
        raise ConfigurationError("relative change against a zero baseline")
    return (after - before) / before
