"""CSV export of every measured series from a scenario run.

The library renders figures as plain text; users who want real plots can
export a run's series and feed them to any tool:

>>> from repro.analysis.export import export_result_csv   # doctest: +SKIP
>>> export_result_csv(result, "out/")                     # doctest: +SKIP

One CSV per series, plus ``summary.csv`` with the scalar statistics the
benchmarks report.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import TYPE_CHECKING

from repro.analysis.figures import figure6_series, figure7_series, figure8_series
from repro.metrics.collectors import TimeSeries
from repro.obs.export import write_jsonl

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.tracer import DecisionTracer
    from repro.scenarios.runner import ScenarioResult


def write_series_csv(series: TimeSeries, path: Path, *, value_name: str) -> None:
    """Write one ``time,<value_name>`` CSV."""
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["time_s", value_name])
        for time, value in series.items():
            writer.writerow([f"{time:.3f}", repr(value)])


def export_result_csv(result: "ScenarioResult", directory: str | Path) -> list[Path]:
    """Export every figure series and the scalar summary; returns paths."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []

    named: dict[str, TimeSeries] = {}
    named.update(
        {f"fig6_{name}": series for name, series in figure6_series(result).items()}
    )
    named.update(
        {f"fig7_{name}": series for name, series in figure7_series(result).items()}
    )
    named.update(
        {f"fig8_{name}": series for name, series in figure8_series(result).items()}
    )
    named["replica_census"] = result.replicas.series

    for name, series in named.items():
        path = directory / f"{name}.csv"
        write_series_csv(series, path, value_name=name)
        written.append(path)

    summary_path = directory / "summary.csv"
    with summary_path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["metric", "value"])
        writer.writerow(["scenario", result.config.name])
        writer.writerow(["workload", result.config.workload])
        writer.writerow(["seed", result.config.seed])
        writer.writerow(["load_scale", result.config.load_scale])
        writer.writerow(["requests_completed", result.latency.completed])
        writer.writerow(["requests_dropped", result.latency.dropped])
        writer.writerow(["bandwidth_reduction", result.bandwidth_reduction()])
        writer.writerow(["proximity_reduction", result.proximity_reduction()])
        writer.writerow(["latency_equilibrium_s", result.latency_equilibrium()])
        writer.writerow(["replicas_per_object", result.replicas_per_object()])
        writer.writerow(
            ["overhead_fraction_fullscale", result.overhead_fraction_fullscale()]
        )
        writer.writerow(["max_load_settled", result.max_load_settled()])
    written.append(summary_path)

    if result.trace is not None:
        written.append(export_trace_jsonl(result.trace, directory / "trace.jsonl"))
    return written


def export_trace_jsonl(trace: "DecisionTracer", path: str | Path) -> Path:
    """Write a tracer's retained records (all kinds, ingest order) as JSONL."""
    path = Path(path)
    write_jsonl(trace.records(), path)
    return path
