"""Per-link traffic analysis.

When a scenario runs with ``track_links=True``, every backbone link keeps
per-class byte counters; this module turns them into the utilisation
views an operator would look at: the hottest links, per-class shares, and
whether dynamic replication relieved the trunk links (it should — that is
what "reducing the backbone bandwidth is an overriding concern" means in
practice).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.network.message import OVERHEAD_CLASSES, MessageClass
from repro.network.transport import Network
from repro.types import NodeId


@dataclass(frozen=True, slots=True)
class LinkReport:
    """One link's traffic summary."""

    a: NodeId
    b: NodeId
    total_bytes: int
    utilisation: float
    overhead_share: float


def link_reports(
    network: Network, *, elapsed: float
) -> list[LinkReport]:
    """Per-link summaries, busiest first.

    ``elapsed`` is the simulated time the counters accumulated over;
    utilisation is measured against the network's configured bandwidth.
    """
    if elapsed <= 0:
        raise ConfigurationError("elapsed must be positive")
    reports = []
    for link in network.links():
        total = link.total_bytes
        overhead = sum(
            link.bytes_by_class[cls] for cls in OVERHEAD_CLASSES
        )
        reports.append(
            LinkReport(
                a=link.a,
                b=link.b,
                total_bytes=total,
                utilisation=link.utilisation(elapsed, network.bandwidth),
                overhead_share=overhead / total if total else 0.0,
            )
        )
    reports.sort(key=lambda r: (-r.total_bytes, r.a, r.b))
    return reports


def hottest_links(
    network: Network, *, elapsed: float, top: int = 10
) -> list[LinkReport]:
    """The ``top`` busiest links."""
    if top < 1:
        raise ConfigurationError("top must be at least 1")
    return link_reports(network, elapsed=elapsed)[:top]


def traffic_concentration(network: Network) -> float:
    """Share of all bytes carried by the busiest 10% of links.

    A hub-heavy placement shows up as high concentration; spreading
    replicas toward the edge lowers it.
    """
    links = sorted(
        (link.total_bytes for link in network.links()), reverse=True
    )
    total = sum(links)
    if not total:
        return 0.0
    head = max(1, len(links) // 10)
    return sum(links[:head]) / total


def class_byte_shares(network: Network) -> dict[MessageClass, float]:
    """Each traffic class's share of total byte-hops."""
    total = network.total_byte_hops()
    if total == 0:
        return {cls: 0.0 for cls in MessageClass}
    return {
        cls: network.byte_hops[cls] / total for cls in MessageClass
    }
