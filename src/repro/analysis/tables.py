"""Paper tables as data (Table 1 parameters, Table 2 statistics).

``table1_rows`` renders the scenario configuration in the paper's
Table 1 layout (the parameters bench asserts these reproduce the paper
verbatim at full scale).  ``table2_row`` computes one workload's
adjustment time and mean replica count from a finished run; the paper's
reference values are embedded for side-by-side reporting.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.scenarios.config import ScenarioConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.scenarios.runner import ScenarioResult

#: Table 2 of the paper: workload -> (adjustment minutes, mean replicas).
PAPER_TABLE2: dict[str, tuple[float, float]] = {
    "hot-sites": (20.0, 2.62),
    "hot-pages": (22.0, 2.59),
    "regional": (20.0, 1.49),
    "zipf": (23.0, 1.86),
}


def table1_rows(config: ScenarioConfig) -> list[tuple[str, str]]:
    """The scenario's parameters in the paper's Table 1 layout."""
    protocol = config.protocol
    return [
        ("Number of objects", f"{config.num_objects}"),
        ("Size of object", f"{config.object_size // 1024}KB"),
        (
            "Placement decision frequency",
            f"Every {protocol.placement_interval:g} seconds",
        ),
        ("Node request rate", f"{config.node_request_rate:g} requests per sec"),
        ("Server capacity", f"{config.capacity:g} requests per sec"),
        ("Network delay", f"{config.hop_delay * 1000:g}ms per hop"),
        ("Link bandwidth", f"{config.bandwidth / 1000:g} KBps"),
        ("High watermark", f"{protocol.high_watermark:g} requests/sec"),
        ("Low watermark", f"{protocol.low_watermark:g} requests/sec"),
        ("Deletion threshold u", f"{protocol.deletion_threshold:g} requests/sec"),
        (
            "Replication threshold m",
            f"{protocol.replication_threshold / protocol.deletion_threshold:g}u, "
            f"or {protocol.replication_threshold:g} requests/sec",
        ),
    ]


def table2_row(result: "ScenarioResult") -> dict[str, float]:
    """Adjustment time (minutes) and mean replicas for one run."""
    return {
        "adjustment_minutes": result.adjustment_time() / 60.0,
        "replicas_per_object": result.replicas_per_object(),
    }


def table2_rows(
    results: dict[str, "ScenarioResult"],
) -> list[tuple[str, float, float, float, float]]:
    """Measured-vs-paper Table 2 rows.

    Returns ``(workload, measured_minutes, paper_minutes,
    measured_replicas, paper_replicas)`` per workload present in both the
    results and the paper's table.
    """
    rows = []
    for workload, (paper_minutes, paper_replicas) in PAPER_TABLE2.items():
        result = results.get(workload)
        if result is None:
            continue
        measured = table2_row(result)
        rows.append(
            (
                workload,
                measured["adjustment_minutes"],
                paper_minutes,
                measured["replicas_per_object"],
                paper_replicas,
            )
        )
    return rows
