"""The exact series each paper figure plots, as plain data.

Every extractor returns dictionaries of named
:class:`~repro.metrics.collectors.TimeSeries`, renderer-independent so
that benchmarks can print them, tests can assert on them, and users can
feed them to any plotting library.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.metrics.collectors import TimeSeries

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.scenarios.runner import ScenarioResult

#: Paper-reported payload-bandwidth reductions (Figure 6, Section 6.2).
PAPER_BANDWIDTH_REDUCTION: dict[str, float] = {
    "hot-pages": 0.629,
    "hot-sites": 0.683,
    "zipf": 0.601,
    "regional": 0.901,
}

#: Paper-reported mean-latency reductions (Figure 6, Section 6.2).
PAPER_LATENCY_REDUCTION: dict[str, float] = {
    "zipf": 0.20,
    "hot-pages": 0.20,
    "regional": 0.28,
}

#: Figure 7: overhead "always below 2.5% of total traffic".
PAPER_MAX_OVERHEAD = 0.025


def figure6_series(result: "ScenarioResult") -> dict[str, TimeSeries]:
    """Figure 6: bandwidth consumed and mean response latency over time."""
    return {
        "bandwidth_byte_hops": result.bandwidth.payload_series(),
        "mean_latency": result.latency.mean_latency_series(),
        "mean_response_hops": result.latency.mean_response_hops_series(),
    }


def figure7_series(result: "ScenarioResult") -> dict[str, TimeSeries]:
    """Figure 7: relocation overhead as a fraction of total traffic."""
    return {
        "overhead_fraction": result.bandwidth.overhead_fraction_series(),
        "overhead_byte_hops": result.bandwidth.overhead_series(),
    }


def figure8_series(result: "ScenarioResult") -> dict[str, TimeSeries]:
    """Figure 8: max system load; focal host's load vs bound estimates."""
    actual = TimeSeries()
    lower = TimeSeries()
    upper = TimeSeries()
    for sample in result.loads.focal_samples:
        actual.append(sample.time, sample.load)
        lower.append(sample.time, sample.lower_estimate)
        upper.append(sample.time, sample.upper_estimate)
    result.loads.finalize()
    return {
        "max_load": result.loads.max_series,
        "mean_load": result.loads.mean_series,
        "focal_actual": actual,
        "focal_lower": lower,
        "focal_upper": upper,
    }
