"""Ablations over the protocol's tunable parameters.

The paper (Section 6.1) flags several tradeoffs it defers to [1]: the
distribution constant (2), the m/u threshold ratio (6), the placement
interval, and the watermark band.  These sweeps regenerate the tradeoffs
on the Zipf workload so DESIGN.md's claims about each knob are backed by
data.  All runs use a smaller scale/duration than the headline figures —
the point is the ordering between settings, not absolute levels.

Each ablation is one :class:`repro.sweep.SweepSpec` executed by the
sweep engine (parallel across cores when available), and reads its
numbers from the per-point metric aggregation rather than from live
simulator objects.
"""

from __future__ import annotations

import pytest

from repro.metrics.report import format_table
from repro.scenarios.presets import paper_scenario
from repro.sweep import SweepSpec, default_workers, point_label, run_sweep

from benchmarks._util import fmt_pct, report

SCALE = 0.15
DURATION = 1500.0


def _base():
    return paper_scenario("zipf", scale=SCALE, duration=DURATION)


def _sweep(spec):
    result = run_sweep(spec, workers=default_workers())
    assert not result.failures, [r.error for r in result.failures]
    return result


@pytest.fixture(scope="module")
def constant_sweep():
    spec = SweepSpec.grid(
        _base(),
        {"protocol.distribution_constant": (1.5, 2.0, 4.0)},
        name="ablation-distribution-constant",
    )
    return _sweep(spec)


def test_ablation_distribution_constant(constant_sweep, benchmark):
    points = constant_sweep.aggregate()

    def tabulate():
        return [
            [
                f"{constant:g}",
                fmt_pct(metrics["proximity_reduction"].mean),
                f"{metrics['replicas_per_object'].mean:.2f}",
                f"{metrics['max_load_settled'].mean:.1f}",
            ]
            for constant, metrics in (
                (c, points[f"distribution_constant={c}"])
                for c in (1.5, 2.0, 4.0)
            )
        ]

    rows = benchmark(tabulate)
    report(
        "Ablation: distribution constant (paper uses 2)",
        format_table(
            ["constant", "proximity reduction", "replicas/object", "settled max load"],
            rows,
        )
        + "\nLarger constants favour proximity (closest replica keeps a "
        "bigger share);\nsmaller constants spread load more evenly.",
    )
    for metrics in points.values():
        assert metrics["proximity_reduction"].mean > 0.2


def test_ablation_threshold_ratio(benchmark):
    """m/u ratio: the paper requires m > 4u (Theorem 5) and uses m = 6u
    'to prevent boundary effects'.  A tighter ratio must increase
    replica churn (drops), which is exactly the vicious cycle the
    constraint exists to damp."""

    u = 0.03 * SCALE
    ratios = (4.5, 6.0, 12.0)
    overrides = {
        ratio: {
            "protocol.deletion_threshold": u,
            "protocol.replication_threshold": ratio * u,
        }
        for ratio in ratios
    }
    spec = SweepSpec(
        base=_base(),
        points=tuple(overrides.values()),
        name="ablation-threshold-ratio",
    )

    result = benchmark.pedantic(lambda: _sweep(spec), rounds=1, iterations=1)
    points = result.aggregate()
    rows = []
    drops = {}
    for ratio in ratios:
        metrics = points[point_label(overrides[ratio])]
        drops[ratio] = metrics["replica_drops"].mean
        rows.append(
            [
                f"{ratio:g}",
                f"{drops[ratio]:.0f}",
                f"{metrics['replicas_per_object'].mean:.2f}",
                fmt_pct(metrics["proximity_reduction"].mean),
            ]
        )
    report(
        "Ablation: m/u threshold ratio (paper uses 6)",
        format_table(
            ["m/u", "replica drops", "replicas/object", "proximity reduction"],
            rows,
        ),
    )
    # Churn decreases as the ratio widens.
    assert drops[4.5] >= drops[12.0]


def test_ablation_placement_interval(benchmark):
    """Responsiveness vs burst sensitivity: shorter intervals adjust
    faster (the paper chose 100 s to mask sub-minute burstiness)."""

    intervals = (50.0, 100.0, 200.0)
    spec = SweepSpec.grid(
        _base(),
        {"protocol.placement_interval": intervals},
        name="ablation-placement-interval",
    )

    result = benchmark.pedantic(lambda: _sweep(spec), rounds=1, iterations=1)
    points = result.aggregate()
    adjustment = {
        interval: points[f"placement_interval={interval}"]["adjustment_time"].mean
        for interval in intervals
    }
    rows = [
        [
            f"{interval:g}s",
            f"{adjustment[interval] / 60:.1f} min",
            fmt_pct(points[f"placement_interval={interval}"]["proximity_reduction"].mean),
        ]
        for interval in intervals
    ]
    report(
        "Ablation: placement interval (paper uses 100 s)",
        format_table(
            ["interval", "adjustment time", "proximity reduction"], rows
        ),
    )
    assert adjustment[50.0] <= adjustment[200.0] * 1.5
