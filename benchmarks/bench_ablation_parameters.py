"""Ablations over the protocol's tunable parameters.

The paper (Section 6.1) flags several tradeoffs it defers to [1]: the
distribution constant (2), the m/u threshold ratio (6), the placement
interval, and the watermark band.  These sweeps regenerate the tradeoffs
on the Zipf workload so DESIGN.md's claims about each knob are backed by
data.  All runs use a smaller scale/duration than the headline figures —
the point is the ordering between settings, not absolute levels.
"""

from __future__ import annotations

import pytest

from repro.metrics.report import format_table
from repro.scenarios.presets import paper_scenario
from repro.scenarios.runner import run_scenario

from benchmarks._util import fmt_pct, report

SCALE = 0.15
DURATION = 1500.0


def _run(**protocol_overrides):
    config = paper_scenario("zipf", scale=SCALE, duration=DURATION)
    if protocol_overrides:
        config = config.replace(
            protocol=config.protocol.replace(**protocol_overrides)
        )
    return run_scenario(config)


@pytest.fixture(scope="module")
def constant_sweep():
    return {
        constant: _run(distribution_constant=constant)
        for constant in (1.5, 2.0, 4.0)
    }


def test_ablation_distribution_constant(constant_sweep, benchmark):
    rows = benchmark(
        lambda: [
            [
                f"{constant:g}",
                fmt_pct(result.proximity_reduction()),
                f"{result.replicas_per_object():.2f}",
                f"{result.max_load_settled():.1f}",
            ]
            for constant, result in constant_sweep.items()
        ]
    )
    report(
        "Ablation: distribution constant (paper uses 2)",
        format_table(
            ["constant", "proximity reduction", "replicas/object", "settled max load"],
            rows,
        )
        + "\nLarger constants favour proximity (closest replica keeps a "
        "bigger share);\nsmaller constants spread load more evenly.",
    )
    for result in constant_sweep.values():
        assert result.proximity_reduction() > 0.2
        result.system.check_invariants()


def test_ablation_threshold_ratio(benchmark):
    """m/u ratio: the paper requires m > 4u (Theorem 5) and uses m = 6u
    'to prevent boundary effects'.  A tighter ratio must increase
    replica churn (drops), which is exactly the vicious cycle the
    constraint exists to damp."""

    def sweep():
        results = {}
        for ratio in (4.5, 6.0, 12.0):
            u = 0.03 * SCALE
            results[ratio] = _run(
                deletion_threshold=u, replication_threshold=ratio * u
            )
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    drops = {}
    for ratio, result in results.items():
        events = result.system.placement_events
        drops[ratio] = sum(1 for e in events if e.action.value == "drop")
        rows.append(
            [
                f"{ratio:g}",
                f"{drops[ratio]}",
                f"{result.replicas_per_object():.2f}",
                fmt_pct(result.proximity_reduction()),
            ]
        )
    report(
        "Ablation: m/u threshold ratio (paper uses 6)",
        format_table(
            ["m/u", "replica drops", "replicas/object", "proximity reduction"],
            rows,
        ),
    )
    # Churn decreases as the ratio widens.
    assert drops[4.5] >= drops[12.0]


def test_ablation_placement_interval(benchmark):
    """Responsiveness vs burst sensitivity: shorter intervals adjust
    faster (the paper chose 100 s to mask sub-minute burstiness)."""

    def sweep():
        return {
            interval: _run(placement_interval=interval)
            for interval in (50.0, 100.0, 200.0)
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        [
            f"{interval:g}s",
            f"{result.adjustment_time() / 60:.1f} min",
            fmt_pct(result.proximity_reduction()),
        ]
        for interval, result in results.items()
    ]
    report(
        "Ablation: placement interval (paper uses 100 s)",
        format_table(
            ["interval", "adjustment time", "proximity reduction"], rows
        ),
    )
    assert results[50.0].adjustment_time() <= results[200.0].adjustment_time() * 1.5
