"""Figure 6: bandwidth consumed and average response latency over time.

Regenerates both panels for all four workloads and compares the
reductions against the paper's reported numbers (bandwidth: -62.9%
hot-pages, -68.3% hot-sites, -60.1% Zipf, -90.1% regional; latency:
~-20% Zipf/hot-pages, -28% regional, with hot-sites starting at tens of
seconds before the hot spots dissolve).

Expectations encoded as assertions are *shape* expectations: the ranking
of workloads, the sign and rough magnitude of each effect — not the
paper's absolute numbers, which depend on the authors' exact UUNET map.
"""

from __future__ import annotations

from repro.analysis.figures import PAPER_BANDWIDTH_REDUCTION, figure6_series
from repro.metrics.report import format_table, sparkline
from repro.scenarios.presets import WORKLOAD_NAMES

from benchmarks._util import fmt_pct, report


def test_fig6_bandwidth_and_latency(paper_results, benchmark):
    def extract():
        return {name: figure6_series(result) for name, result in paper_results.items()}

    series = benchmark(extract)

    rows = []
    lines = []
    for workload in WORKLOAD_NAMES:
        result = paper_results[workload]
        bw_red = result.bandwidth_reduction()
        prox_red = result.proximity_reduction()
        lat_start = result.latency_start()
        lat_eq = result.latency_equilibrium()
        rows.append(
            [
                workload,
                fmt_pct(bw_red),
                fmt_pct(PAPER_BANDWIDTH_REDUCTION[workload]),
                fmt_pct(prox_red),
                f"{lat_start:.2f}s",
                f"{lat_eq:.2f}s",
            ]
        )
        lines.append(
            f"{workload:>10} bw/min {sparkline(series[workload]['bandwidth_byte_hops'])}"
        )
        lines.append(
            f"{'':>10} lat    {sparkline(series[workload]['mean_latency'])}"
        )

    report(
        "Figure 6: bandwidth and latency vs time",
        format_table(
            [
                "workload",
                "bw reduction",
                "paper bw",
                "per-request bw reduction",
                "latency start",
                "latency eq",
            ],
            rows,
        )
        + "\n\n" + "\n".join(lines),
    )

    # Shape assertions ---------------------------------------------------
    reductions = {w: paper_results[w].bandwidth_reduction() for w in WORKLOAD_NAMES}
    proximity = {w: paper_results[w].proximity_reduction() for w in WORKLOAD_NAMES}
    # Every workload's backbone traffic per request improves materially.
    for workload in WORKLOAD_NAMES:
        assert proximity[workload] > 0.25, workload
    # Regional wins by far the most (paper: 90.1% vs 60-68%).
    assert reductions["regional"] == max(reductions.values())
    assert reductions["regional"] > 0.6
    # Zipf and hot-pages land in the same broad band as the paper's 60%.
    assert 0.3 < reductions["zipf"] < 0.75
    assert 0.3 < reductions["hot-pages"] < 0.75
    # Latency: improvements are smaller than bandwidth ones (every
    # request still detours via the redirector), and hot-sites starts
    # catastrophically high before the hot spots dissolve.
    for workload in ("zipf", "hot-pages", "regional"):
        result = paper_results[workload]
        assert result.latency_equilibrium() < result.latency_start()
    hot_sites = paper_results["hot-sites"]
    assert hot_sites.latency_start() > 5.0
    assert hot_sites.latency_equilibrium() < 1.0
    # Hot-sites and hot-pages converge to similar equilibrium bandwidth
    # (the paper: "the equilibrium bandwidth consumption for both the
    # cases is the same"), despite opposite initial configurations.
    eq_sites = hot_sites.bandwidth_equilibrium()
    eq_pages = paper_results["hot-pages"].bandwidth_equilibrium()
    assert abs(eq_sites - eq_pages) / eq_pages < 0.25
