"""Figure 8: maximum system load (a) and load-bound estimates (b).

(a) "The maximum load always remains below the high-watermark ... which
shows that the algorithm successfully distributes load among the
servers"; initially the hot-sites and Zipf maxima are high before the hot
spots are removed.

(b) One host's actual load lies between its lower and upper bound
estimates, showing the Theorem 1-4 load predictions hold in vivo.
"""

from __future__ import annotations

from repro.analysis.figures import figure8_series
from repro.metrics.report import format_table, sparkline
from repro.scenarios.presets import WORKLOAD_NAMES

from benchmarks._util import report


def test_fig8a_max_load(paper_results, benchmark):
    series = benchmark(
        lambda: {w: figure8_series(r) for w, r in paper_results.items()}
    )
    rows = []
    lines = []
    for workload in WORKLOAD_NAMES:
        result = paper_results[workload]
        hw = result.config.protocol.high_watermark
        capacity = result.config.capacity
        peak = result.max_load()
        settled = result.loads.max_load_after(result.config.duration * 0.85)
        rows.append(
            [
                workload,
                f"{peak:.1f}",
                f"{settled:.1f}",
                f"{hw:g}",
                f"{capacity:g}",
            ]
        )
        lines.append(
            f"{workload:>10} maxload {sparkline(series[workload]['max_load'])}"
        )
    report(
        "Figure 8a: maximum host load",
        format_table(
            ["workload", "peak max load", "settled max load", "hw", "capacity"],
            rows,
        )
        + "\n\n" + "\n".join(lines),
    )
    for workload in WORKLOAD_NAMES:
        result = paper_results[workload]
        hw = result.config.protocol.high_watermark
        # The final-stretch maximum sits at/below the high-watermark band
        # (modest overshoot tolerated: measurement noise at scaled-down
        # absolute counts; hot-sites is the slowest to fully settle).
        settled = result.loads.max_load_after(result.config.duration * 0.85)
        assert settled <= hw * 1.4, workload
    # Hot-sites starts saturated and is pulled down by a large factor.
    hot = paper_results["hot-sites"]
    assert hot.max_load() >= hot.config.capacity * 0.95
    assert (
        hot.loads.max_load_after(hot.config.duration * 0.85)
        < hot.max_load() * 0.55
    )


def test_fig8b_load_estimates(paper_results, benchmark):
    result = paper_results["zipf"]
    series = benchmark(lambda: figure8_series(result))
    actual = series["focal_actual"]
    lower = series["focal_lower"]
    upper = series["focal_upper"]
    assert len(actual) > 50
    inside = sum(
        1
        for a, lo, up in zip(actual.values, lower.values, upper.values)
        if lo - 1e-9 <= a <= up + 1e-9
    )
    coverage = inside / len(actual)
    report(
        "Figure 8b: load estimates bracket actual load",
        f"focal host {result.loads.focal_host}: {len(actual)} samples, "
        f"{coverage * 100:.1f}% inside [lower, upper]\n"
        f"actual {sparkline(actual)}\n"
        f"upper  {sparkline(upper)}\n"
        f"lower  {sparkline(lower)}",
    )
    # The paper's claim: the actual load lies between the estimates.
    # Samples taken while a measurement interval straddles a relocation
    # can transiently escape; the bracket must hold for the vast majority.
    assert coverage > 0.9
    # The bounds are genuinely used (not degenerate): some samples have
    # upper > lower.
    assert any(up > lo + 1e-9 for lo, up in zip(lower.values, upper.values))
