"""CI benchmark-regression gate: compare a smoke sweep to the baseline.

Usage::

    python -m repro sweep --smoke --json bench_smoke.json
    python benchmarks/compare_baseline.py bench_smoke.json

Compares the sweep summary produced by ``python -m repro sweep --smoke``
against the committed ``benchmarks/reports/baseline.json``:

* **spec identity** — the spec hashes must match exactly (a drifted
  smoke spec silently invalidates the comparison, so it is an error);
* **run health** — every run must have status ``ok``;
* **throughput** — serviced requests per wall-clock second must be
  within ``--tolerance`` (default ±25%) of the baseline.  Throughput is
  machine-sensitive; the tolerance absorbs runner jitter while catching
  step-change regressions in the simulator hot path or the executor;
* **deterministic metrics** — per-point metric means must be within
  ``--metric-tolerance`` (default 10%) relative.  These depend only on
  seeds, so a drift here means the simulation itself changed behaviour
  (which must come with a regenerated baseline).

Exit code 0 on pass, 1 on any violation (the CI job fails).  Regenerate
the baseline after an intentional change with::

    python -m repro sweep --smoke --json benchmarks/reports/baseline.json

Engine trajectory gate
----------------------
``--engine`` switches to comparing a ``BENCH_engine.json`` produced by
``benchmarks/engine_trajectory.py`` against the committed
``benchmarks/reports/engine_baseline.json``:

* every shape's throughput (events/sec or requests/sec) must not regress
  more than ``--tolerance`` (±25% default — machine-sensitive, so only
  regressions beyond the band fail, improvements always pass);
* the large-topology run's ``completed_requests`` must match the
  baseline **exactly** when the simulated horizons agree — the scenario
  is seeded and deterministic, so any drift means the engine changed
  simulation behaviour.

Regenerate with ``python benchmarks/engine_trajectory.py --quick --out
benchmarks/reports/engine_baseline.json`` after an intentional change.

Live saturation gate
--------------------
``--live`` compares a ``BENCH_live.json`` produced by
``benchmarks/live_saturation.py`` against the committed
``benchmarks/reports/live_baseline.json``:

* every shard configuration's ``sustained_rps`` must not regress more
  than ``--tolerance`` (±25% default) — live serving throughput is the
  most machine-sensitive number in the suite (real sockets, real
  processes, shared CI cores), so the gate is regression-only and
  improvements always pass;
* a configuration that sustained load in the baseline must still
  sustain *some* load (a sustained_rps collapse to zero means every
  step blew the latency SLA or error bound — a functional break, not
  jitter);
* the recorded ``speedup_4v1`` must not regress more than the
  tolerance (one-core runners show ~1.0 and that is fine; the gate
  catches a sharded tier that becomes *slower* than one shard).

Regenerate with ``python benchmarks/live_saturation.py --quick --out
benchmarks/reports/live_baseline.json`` after an intentional change.

Optimality-gap gate
-------------------
``--gap`` compares a ``BENCH_optgap.json`` produced by
``benchmarks/optimality_gap.py`` against the committed
``benchmarks/reports/optgap_baseline.json``:

* **soundness** — every point's ``gap_ratio`` must be finite and >= 1.0
  (the oracle is a structural lower bound: a ratio below 1 is a solver
  bug, never noise), its ``oracle_cost`` positive and some requests
  serviced;
* **coverage** — every (topology, load, fault, strategy) point in the
  baseline must be present;
* **stability** — each point's ``gap_ratio`` must be within
  ``--tolerance`` (default ±25%) of the baseline.  Gap runs are seeded
  and the oracle exact, so genuine drift means protocol behaviour
  changed (which must come with a regenerated baseline).

Regenerate with ``python benchmarks/optimality_gap.py --quick --out
benchmarks/reports/optgap_baseline.json`` after an intentional change.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from pathlib import Path

DEFAULT_BASELINE = Path(__file__).parent / "reports" / "baseline.json"
DEFAULT_ENGINE_BASELINE = Path(__file__).parent / "reports" / "engine_baseline.json"
DEFAULT_LIVE_BASELINE = Path(__file__).parent / "reports" / "live_baseline.json"
DEFAULT_GAP_BASELINE = Path(__file__).parent / "reports" / "optgap_baseline.json"


def _rel_delta(current: float, reference: float) -> float:
    if reference == 0:
        return 0.0 if current == 0 else math.inf
    return (current - reference) / abs(reference)


def compare(
    current: dict,
    baseline: dict,
    *,
    tolerance: float,
    metric_tolerance: float,
) -> list[str]:
    """Return the list of violations (empty = gate passes)."""
    problems: list[str] = []

    if current.get("spec_hash") != baseline.get("spec_hash"):
        problems.append(
            f"spec hash mismatch: current {current.get('spec_hash')!r} vs "
            f"baseline {baseline.get('spec_hash')!r} — the smoke spec changed; "
            "regenerate benchmarks/reports/baseline.json"
        )
        return problems  # nothing else is comparable

    statuses = current.get("statuses", {})
    failed = {k: v for k, v in statuses.items() if k != "ok"}
    if failed or statuses.get("ok", 0) != current.get("runs"):
        problems.append(f"not all runs succeeded: statuses={statuses}")

    throughput = current.get("throughput_rps", 0.0)
    reference = baseline.get("throughput_rps", 0.0)
    delta = _rel_delta(throughput, reference)
    if delta < -tolerance:
        problems.append(
            f"throughput regressed {-delta:.1%} (> {tolerance:.0%} tolerance): "
            f"{throughput:.0f} rps vs baseline {reference:.0f} rps"
        )

    for point, metrics in baseline.get("points", {}).items():
        current_metrics = current.get("points", {}).get(point)
        if current_metrics is None:
            problems.append(f"point {point!r} missing from current summary")
            continue
        for name, stats in metrics.items():
            if name not in current_metrics:
                problems.append(f"metric {point}/{name} missing from current summary")
                continue
            drift = _rel_delta(current_metrics[name]["mean"], stats["mean"])
            if abs(drift) > metric_tolerance:
                problems.append(
                    f"deterministic metric {point}/{name} drifted {drift:+.1%} "
                    f"(> {metric_tolerance:.0%}): {current_metrics[name]['mean']:.6g} "
                    f"vs baseline {stats['mean']:.6g}"
                )
    return problems


def compare_engine(
    current: dict, baseline: dict, *, tolerance: float
) -> list[str]:
    """Gate a ``BENCH_engine.json`` trajectory artifact (see module doc)."""
    problems: list[str] = []
    if current.get("schema") != baseline.get("schema"):
        problems.append(
            f"schema mismatch: current {current.get('schema')!r} vs "
            f"baseline {baseline.get('schema')!r}"
        )
        return problems

    for shape, base_result in baseline.get("results", {}).items():
        result = current.get("results", {}).get(shape)
        if result is None:
            problems.append(f"shape {shape!r} missing from current artifact")
            continue
        for rate_key in ("events_per_sec", "requests_per_sec"):
            if rate_key not in base_result:
                continue
            delta = _rel_delta(result.get(rate_key, 0.0), base_result[rate_key])
            if delta < -tolerance:
                problems.append(
                    f"{shape}/{rate_key} regressed {-delta:.1%} "
                    f"(> {tolerance:.0%} tolerance): {result.get(rate_key, 0):,.0f} "
                    f"vs baseline {base_result[rate_key]:,.0f}"
                )

    base_large = baseline.get("results", {}).get("large_topology", {})
    cur_large = current.get("results", {}).get("large_topology", {})
    if base_large.get("duration_simulated_s") == cur_large.get(
        "duration_simulated_s"
    ) and cur_large.get("completed_requests") != base_large.get("completed_requests"):
        # Seeded and deterministic: any drift is a behaviour change in
        # the engine, not noise, and needs a regenerated baseline.
        problems.append(
            "large_topology completed_requests drifted: "
            f"{cur_large.get('completed_requests')} vs baseline "
            f"{base_large.get('completed_requests')} — the engine changed "
            "simulation behaviour; regenerate "
            "benchmarks/reports/engine_baseline.json with rationale"
        )
    return problems


def compare_live(
    current: dict, baseline: dict, *, tolerance: float
) -> list[str]:
    """Gate a ``BENCH_live.json`` saturation artifact (see module doc)."""
    problems: list[str] = []
    if current.get("schema") != baseline.get("schema"):
        problems.append(
            f"schema mismatch: current {current.get('schema')!r} vs "
            f"baseline {baseline.get('schema')!r}"
        )
        return problems

    for name, base_result in baseline.get("results", {}).items():
        result = current.get("results", {}).get(name)
        if result is None:
            problems.append(f"configuration {name!r} missing from current artifact")
            continue
        base_rate = base_result.get("sustained_rps", 0.0)
        rate = result.get("sustained_rps", 0.0)
        if base_rate > 0.0 and rate == 0.0:
            problems.append(
                f"{name} sustained no load at all (baseline "
                f"{base_rate:,.0f} rps): every step blew the p99 SLA or "
                "the error bound"
            )
            continue
        delta = _rel_delta(rate, base_rate)
        if delta < -tolerance:
            problems.append(
                f"{name}/sustained_rps regressed {-delta:.1%} "
                f"(> {tolerance:.0%} tolerance): {rate:,.0f} vs "
                f"baseline {base_rate:,.0f}"
            )

    base_speedup = baseline.get("speedup_4v1")
    speedup = current.get("speedup_4v1")
    if base_speedup is not None:
        if speedup is None:
            problems.append("speedup_4v1 missing from current artifact")
        else:
            delta = _rel_delta(speedup, base_speedup)
            if delta < -tolerance:
                problems.append(
                    f"speedup_4v1 regressed {-delta:.1%} "
                    f"(> {tolerance:.0%} tolerance): {speedup:.2f}x vs "
                    f"baseline {base_speedup:.2f}x"
                )
    return problems


def _gap_point_key(point: dict) -> str:
    return (
        f"{point.get('topology')}/load={point.get('load_scale')}"
        f"/mtbf={point.get('fault_mtbf')}/{point.get('strategy')}"
    )


def compare_gap(
    current: dict, baseline: dict, *, tolerance: float
) -> list[str]:
    """Gate a ``BENCH_optgap.json`` artifact (see module doc)."""
    problems: list[str] = []
    if current.get("schema") != baseline.get("schema"):
        problems.append(
            f"schema mismatch: current {current.get('schema')!r} vs "
            f"baseline {baseline.get('schema')!r}"
        )
        return problems

    points = {_gap_point_key(p): p for p in current.get("points", [])}
    if not points:
        problems.append("current artifact has no gap points")
        return problems

    for key, point in sorted(points.items()):
        ratio = point.get("gap_ratio")
        if ratio is None or not math.isfinite(ratio):
            problems.append(f"{key}: gap_ratio is {ratio!r} (must be finite)")
            continue
        if ratio < 1.0 - 1e-9:
            problems.append(
                f"{key}: gap_ratio {ratio:.6f} < 1.0 — the oracle stopped "
                "being a lower bound (solver bug, not noise)"
            )
        if point.get("oracle_cost", 0.0) <= 0.0:
            problems.append(f"{key}: oracle_cost must be positive")
        if point.get("requests_serviced", 0) <= 0:
            problems.append(f"{key}: no requests serviced")

    for base_point in baseline.get("points", []):
        key = _gap_point_key(base_point)
        point = points.get(key)
        if point is None:
            problems.append(f"point {key!r} missing from current artifact")
            continue
        drift = _rel_delta(
            point.get("gap_ratio", 0.0), base_point.get("gap_ratio", 0.0)
        )
        if abs(drift) > tolerance:
            problems.append(
                f"{key}: gap_ratio drifted {drift:+.1%} (> {tolerance:.0%}): "
                f"{point.get('gap_ratio'):.4f} vs baseline "
                f"{base_point.get('gap_ratio'):.4f} — protocol behaviour "
                "changed; regenerate benchmarks/reports/optgap_baseline.json "
                "with rationale"
            )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", help="sweep summary JSON to check")
    parser.add_argument(
        "--baseline",
        default=None,
        help=f"baseline summary JSON (default: {DEFAULT_BASELINE}, or "
        f"{DEFAULT_ENGINE_BASELINE} with --engine)",
    )
    parser.add_argument(
        "--engine",
        action="store_true",
        help="compare a BENCH_engine.json trajectory artifact instead of "
        "a sweep summary",
    )
    parser.add_argument(
        "--live",
        action="store_true",
        help="compare a BENCH_live.json saturation artifact instead of "
        "a sweep summary",
    )
    parser.add_argument(
        "--gap",
        action="store_true",
        help="compare a BENCH_optgap.json optimality-gap artifact instead "
        "of a sweep summary",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed relative throughput regression (default: 0.25)",
    )
    parser.add_argument(
        "--metric-tolerance",
        type=float,
        default=0.10,
        help="allowed relative drift of deterministic metric means (default: 0.10)",
    )
    args = parser.parse_args(argv)

    if sum((args.engine, args.live, args.gap)) > 1:
        parser.error("--engine, --live and --gap are mutually exclusive")
    if args.gap:
        default = DEFAULT_GAP_BASELINE
    elif args.live:
        default = DEFAULT_LIVE_BASELINE
    elif args.engine:
        default = DEFAULT_ENGINE_BASELINE
    else:
        default = DEFAULT_BASELINE
    current = json.loads(Path(args.current).read_text())
    baseline = json.loads(Path(args.baseline or default).read_text())
    if args.gap:
        problems = compare_gap(current, baseline, tolerance=args.tolerance)
        for key, point in sorted(
            (_gap_point_key(p), p) for p in current.get("points", [])
        ):
            print(
                f"{key}: gap {point.get('gap_ratio', float('nan')):.4f} "
                f"(oracle {point.get('oracle_cost', 0):,.0f}, "
                f"violations {point.get('capacity_violations', 0)})"
            )
    elif args.live:
        problems = compare_live(current, baseline, tolerance=args.tolerance)
        for name, base_result in sorted(baseline.get("results", {}).items()):
            result = current.get("results", {}).get(name, {})
            rate = result.get("sustained_rps", 0.0)
            base_rate = base_result.get("sustained_rps", 0.0)
            delta = _rel_delta(rate, base_rate)
            print(
                f"{name}: sustained {rate:,.0f} rps "
                f"(baseline {base_rate:,.0f} rps, {delta:+.1%})"
            )
        if current.get("speedup_4v1") is not None:
            print(f"speedup 4v1: {current['speedup_4v1']:.2f}x")
    elif args.engine:
        problems = compare_engine(current, baseline, tolerance=args.tolerance)
        for shape, base_result in baseline.get("results", {}).items():
            result = current.get("results", {}).get(shape, {})
            for rate_key in ("events_per_sec", "requests_per_sec"):
                if rate_key in base_result:
                    delta = _rel_delta(
                        result.get(rate_key, 0.0), base_result[rate_key]
                    )
                    print(
                        f"{shape}: {result.get(rate_key, 0):,.0f} "
                        f"{rate_key.split('_per_')[0]}/s "
                        f"(baseline {base_result[rate_key]:,.0f}, {delta:+.1%})"
                    )
    else:
        problems = compare(
            current,
            baseline,
            tolerance=args.tolerance,
            metric_tolerance=args.metric_tolerance,
        )
        speedup = _rel_delta(
            current.get("throughput_rps", 0.0), baseline.get("throughput_rps", 1.0)
        )
        print(
            f"throughput: {current.get('throughput_rps', 0):.0f} rps "
            f"(baseline {baseline.get('throughput_rps', 0):.0f} rps, {speedup:+.1%})"
        )
    if problems:
        print(f"\nbenchmark gate FAILED ({len(problems)} violation(s)):")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    print("benchmark gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
