"""CI benchmark-regression gate: compare a smoke sweep to the baseline.

Usage::

    python -m repro sweep --smoke --json bench_smoke.json
    python benchmarks/compare_baseline.py bench_smoke.json

Compares the sweep summary produced by ``python -m repro sweep --smoke``
against the committed ``benchmarks/reports/baseline.json``:

* **spec identity** — the spec hashes must match exactly (a drifted
  smoke spec silently invalidates the comparison, so it is an error);
* **run health** — every run must have status ``ok``;
* **throughput** — serviced requests per wall-clock second must be
  within ``--tolerance`` (default ±25%) of the baseline.  Throughput is
  machine-sensitive; the tolerance absorbs runner jitter while catching
  step-change regressions in the simulator hot path or the executor;
* **deterministic metrics** — per-point metric means must be within
  ``--metric-tolerance`` (default 10%) relative.  These depend only on
  seeds, so a drift here means the simulation itself changed behaviour
  (which must come with a regenerated baseline).

Exit code 0 on pass, 1 on any violation (the CI job fails).  Regenerate
the baseline after an intentional change with::

    python -m repro sweep --smoke --json benchmarks/reports/baseline.json
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from pathlib import Path

DEFAULT_BASELINE = Path(__file__).parent / "reports" / "baseline.json"


def _rel_delta(current: float, reference: float) -> float:
    if reference == 0:
        return 0.0 if current == 0 else math.inf
    return (current - reference) / abs(reference)


def compare(
    current: dict,
    baseline: dict,
    *,
    tolerance: float,
    metric_tolerance: float,
) -> list[str]:
    """Return the list of violations (empty = gate passes)."""
    problems: list[str] = []

    if current.get("spec_hash") != baseline.get("spec_hash"):
        problems.append(
            f"spec hash mismatch: current {current.get('spec_hash')!r} vs "
            f"baseline {baseline.get('spec_hash')!r} — the smoke spec changed; "
            "regenerate benchmarks/reports/baseline.json"
        )
        return problems  # nothing else is comparable

    statuses = current.get("statuses", {})
    failed = {k: v for k, v in statuses.items() if k != "ok"}
    if failed or statuses.get("ok", 0) != current.get("runs"):
        problems.append(f"not all runs succeeded: statuses={statuses}")

    throughput = current.get("throughput_rps", 0.0)
    reference = baseline.get("throughput_rps", 0.0)
    delta = _rel_delta(throughput, reference)
    if delta < -tolerance:
        problems.append(
            f"throughput regressed {-delta:.1%} (> {tolerance:.0%} tolerance): "
            f"{throughput:.0f} rps vs baseline {reference:.0f} rps"
        )

    for point, metrics in baseline.get("points", {}).items():
        current_metrics = current.get("points", {}).get(point)
        if current_metrics is None:
            problems.append(f"point {point!r} missing from current summary")
            continue
        for name, stats in metrics.items():
            if name not in current_metrics:
                problems.append(f"metric {point}/{name} missing from current summary")
                continue
            drift = _rel_delta(current_metrics[name]["mean"], stats["mean"])
            if abs(drift) > metric_tolerance:
                problems.append(
                    f"deterministic metric {point}/{name} drifted {drift:+.1%} "
                    f"(> {metric_tolerance:.0%}): {current_metrics[name]['mean']:.6g} "
                    f"vs baseline {stats['mean']:.6g}"
                )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", help="sweep summary JSON to check")
    parser.add_argument(
        "--baseline",
        default=str(DEFAULT_BASELINE),
        help=f"baseline summary JSON (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed relative throughput regression (default: 0.25)",
    )
    parser.add_argument(
        "--metric-tolerance",
        type=float,
        default=0.10,
        help="allowed relative drift of deterministic metric means (default: 0.10)",
    )
    args = parser.parse_args(argv)

    current = json.loads(Path(args.current).read_text())
    baseline = json.loads(Path(args.baseline).read_text())
    problems = compare(
        current,
        baseline,
        tolerance=args.tolerance,
        metric_tolerance=args.metric_tolerance,
    )
    speedup = _rel_delta(
        current.get("throughput_rps", 0.0), baseline.get("throughput_rps", 1.0)
    )
    print(
        f"throughput: {current.get('throughput_rps', 0):.0f} rps "
        f"(baseline {baseline.get('throughput_rps', 0):.0f} rps, {speedup:+.1%})"
    )
    if problems:
        print(f"\nbenchmark gate FAILED ({len(problems)} violation(s)):")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    print("benchmark gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
