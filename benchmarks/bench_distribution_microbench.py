"""Microbenchmarks and Section 3 micro-scenarios for request distribution.

Covers the motivating example quantitatively — the paper's algorithm vs
the round-robin and closest-replica strawmen on the America/Europe
two-cluster world — and measures the redirector's per-request decision
cost (the hot path of the whole platform).
"""

from __future__ import annotations

from repro.baselines.closest import ClosestReplicaRedirector
from repro.baselines.round_robin import RoundRobinRedirector
from repro.core.redirector import RedirectorService
from repro.metrics.report import format_table
from repro.routing.routes_db import RoutingDatabase
from repro.topology.generators import two_cluster_topology
from repro.topology.uunet import uunet_backbone

from benchmarks._util import report

AMERICA_GW, EUROPE_GW = 0, 8
AMERICA_HOST, EUROPE_HOST = 1, 7


def _service(cls):
    topology = two_cluster_topology(cluster_size=4, bridge_length=3)
    service = cls(0, RoutingDatabase(topology))
    service.register_initial(0, AMERICA_HOST)
    service.replica_created(0, EUROPE_HOST, 1)
    return service


def _shares(service, pattern, n=3000):
    counts = {AMERICA_HOST: 0, EUROPE_HOST: 0}
    for i in range(n):
        counts[service.choose_replica(pattern[i % len(pattern)], 0)] += 1
    return {host: count / n for host, count in counts.items()}


def test_section3_motivating_scenarios(benchmark):
    def run_all():
        table = {}
        for name, cls in (
            ("paper", RedirectorService),
            ("round-robin", RoundRobinRedirector),
            ("closest", ClosestReplicaRedirector),
        ):
            balanced = _shares(_service(cls), [AMERICA_GW, EUROPE_GW])
            hotspot = _shares(_service(cls), [AMERICA_GW])
            table[name] = (balanced, hotspot)
        return table

    table = benchmark(run_all)
    rows = []
    for name, (balanced, hotspot) in table.items():
        rows.append(
            [
                name,
                f"{balanced[AMERICA_HOST] * 100:.0f} / "
                f"{balanced[EUROPE_HOST] * 100:.0f}",
                f"{hotspot[AMERICA_HOST] * 100:.0f} / "
                f"{hotspot[EUROPE_HOST] * 100:.0f}",
            ]
        )
    report(
        "Section 3 motivating example: request shares America/Europe",
        format_table(
            ["policy", "balanced demand (A%/E%)", "American hotspot (A%/E%)"],
            rows,
        )
        + "\npaper's algorithm: balanced -> all local; hotspot -> 67/33 split",
    )

    paper_balanced, paper_hotspot = table["paper"]
    # Balanced demand: everyone served locally.
    assert paper_balanced[AMERICA_HOST] > 0.47
    assert paper_balanced[EUROPE_HOST] > 0.47
    # Hotspot: exactly the one-third spill of the factor-2 rule.
    assert abs(paper_hotspot[EUROPE_HOST] - 1 / 3) < 0.03
    # Round-robin wastes half the balanced traffic on ocean crossings.
    rr_balanced, rr_hotspot = table["round-robin"]
    assert abs(rr_hotspot[EUROPE_HOST] - 0.5) < 0.02
    # Closest never sheds the hotspot.
    _, closest_hotspot = table["closest"]
    assert closest_hotspot[EUROPE_HOST] == 0.0


def test_choose_replica_throughput(benchmark):
    """Per-request decision cost with a realistic replica set."""
    routes = RoutingDatabase(uunet_backbone())
    service = RedirectorService(routes.min_mean_distance_node(), routes)
    service.register_initial(0, 0)
    for host in (5, 17, 33, 46):
        service.replica_created(0, host, 1)
    gateways = list(range(53))
    state = {"i": 0}

    def choose():
        state["i"] = (state["i"] + 1) % 53
        return service.choose_replica(gateways[state["i"]], 0)

    benchmark(choose)


def test_closest_replica_throughput(benchmark):
    routes = RoutingDatabase(uunet_backbone())
    service = ClosestReplicaRedirector(0, routes)
    service.register_initial(0, 0)
    for host in (5, 17, 33, 46):
        service.replica_created(0, host, 1)
    state = {"i": 0}

    def choose():
        state["i"] = (state["i"] + 1) % 53
        return service.choose_replica(state["i"], 0)

    benchmark(choose)
