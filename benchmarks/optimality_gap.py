"""Emit the ``BENCH_optgap.json`` optimality-gap artifact.

Standalone (no pytest-benchmark): replays one seeded workload through
the paper protocol and each selected baseline strategy, computes the
offline-optimal assignment cost for the demand trace every run actually
served (:mod:`repro.optimal.gap`), and writes one JSON document of gap
points — ``protocol_cost / oracle_cost``, stale-capacity violations and
replica counts — across topology x load x fault-rate coordinates.

Every ratio is >= 1 *by construction* (the oracle's problem admits the
run's own assignment as a feasible solution), so a ratio below 1 in the
artifact is a solver bug, and the CI gate treats it as one.

Usage::

    python benchmarks/optimality_gap.py --out BENCH_optgap.json --quick

``--quick`` is the CI mode: a small balanced tree plus a 13-node
backbone slice, two strategies, 3 load levels x 2 fault rates.  The
committed ``benchmarks/reports/optgap_baseline.json`` is a ``--quick``
artifact; regenerate it (same flag) after an intentional behaviour
change and gate with ``python benchmarks/compare_baseline.py --gap
BENCH_optgap.json``.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.optimal.gap import (  # noqa: E402
    GapSettings,
    quick_settings,
    run_gap_benchmark,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", default="BENCH_optgap.json", help="output JSON path"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI-sized campaign (small tree + backbone slice, 2 strategies)",
    )
    parser.add_argument(
        "--strategies",
        default=None,
        help="comma-separated strategy names (default: campaign's own list)",
    )
    args = parser.parse_args(argv)

    settings = quick_settings() if args.quick else GapSettings()
    if args.strategies:
        strategies = tuple(s.strip() for s in args.strategies.split(",") if s.strip())
        settings = dataclasses.replace(settings, strategies=strategies)

    started = time.perf_counter()

    def progress(topology: str, load: float, mtbf, strategy: str) -> None:
        print(
            f"[{time.perf_counter() - started:6.1f}s] {topology} "
            f"load={load:g} mtbf={mtbf} strategy={strategy}",
            flush=True,
        )

    payload = run_gap_benchmark(settings, progress=progress)
    payload["elapsed_seconds"] = time.perf_counter() - started

    out = Path(args.out)
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    print(f"\n{len(payload['points'])} gap points -> {out}")
    worst = max(payload["points"], key=lambda p: p["gap_ratio"])
    print(
        f"worst gap: {worst['gap_ratio']:.4f} "
        f"({worst['topology']}, load={worst['load_scale']:g}, "
        f"mtbf={worst['fault_mtbf']}, {worst['strategy']})"
    )
    bad = [p for p in payload["points"] if p["gap_ratio"] < 1.0 - 1e-9]
    if bad:
        print(f"ERROR: {len(bad)} point(s) below 1.0 — oracle is not a lower bound")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
