"""Emit the ``BENCH_engine.json`` perf-trajectory artifact.

Standalone (no pytest-benchmark): times the substrate shapes from
``benchmarks/bench_engine_throughput.py`` with ``perf_counter`` and
writes one JSON document recording the engine's measured throughput,
alongside the pre-overhaul numbers, so every CI run extends a recorded
perf trajectory instead of a point-in-time anecdote.

Shapes
------
* ``event_loop``        — bare self-scheduling tick (scheduling latency)
* ``event_loop_drain``  — 200k pre-scheduled events drained by ``run()``;
  the bare event-loop throughput number: no protocol code, per-pop cost
  with a deep pending queue — the shape large scenarios live in
* ``batched_schedule_drain`` — ``post_batch`` a 200k arrival vector, then
  drain (the batched-workload scheduling path end to end)
* ``request_pipeline``  — full request flow over the UUNET backbone
* ``large_topology``    — a complete 500-host / 100k-object scenario run

Usage::

    python benchmarks/engine_trajectory.py --out BENCH_engine.json --quick

``--quick`` is the CI mode: fewer repeats and a 20-second simulated
horizon for the large-topology run.  The committed
``benchmarks/reports/engine_baseline.json`` is a ``--quick`` artifact;
regenerate it (same flag) after an intentional engine change and gate
with ``python benchmarks/compare_baseline.py --engine BENCH_engine.json``.

The repo root also commits a ``BENCH_engine.json``: the same artifact
plus a ``history`` list with one compact point per PR, so the measured
perf trajectory lives in the repo.  Extend it after a perf-relevant
change with::

    python benchmarks/engine_trajectory.py --quick --append-history \
        --label "<short change description>" --out BENCH_engine.json

(the gate ignores the extra ``history`` key, so the root artifact is
directly comparable with ``--engine`` as well).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.config import ProtocolConfig  # noqa: E402
from repro.core.protocol import HostingSystem  # noqa: E402
from repro.network.transport import Network  # noqa: E402
from repro.routing.routes_db import RoutingDatabase  # noqa: E402
from repro.scenarios.presets import large_topology_scenario  # noqa: E402
from repro.scenarios.runner import run_scenario  # noqa: E402
from repro.sim.engine import Simulator  # noqa: E402
from repro.topology.uunet import uunet_backbone  # noqa: E402

SCHEMA = "engine-trajectory/v1"

#: Throughput of the same shapes measured at the pre-overhaul engine
#: (single binary heap over Event objects, per-event generators), on the
#: CI container class this trajectory started on.  These are the fixed
#: "before" anchors of the trajectory; current numbers are measured
#: fresh each run.  ``None`` where the shape did not exist before the
#: overhaul (no batch-scheduling path; the large-topology preset is new).
BEFORE = {
    "event_loop": {"events_per_sec": 1_500_000.0},
    "event_loop_drain": {"events_per_sec": 415_000.0},
    "batched_schedule_drain": None,
    "request_pipeline": {"requests_per_sec": 115_000.0},
    "large_topology": None,
}

EVENT_LOOP_EVENTS = 10_000
DRAIN_EVENTS = 200_000
PIPELINE_REQUESTS = 2_000


def _best_of(rounds: int, fn) -> float:
    """Best (min) wall time over ``rounds`` calls of ``fn``, seconds."""
    best = float("inf")
    for _ in range(rounds):
        elapsed = fn()
        if elapsed < best:
            best = elapsed
    return best


def bench_event_loop(rounds: int) -> dict:
    def one_round() -> float:
        sim = Simulator()
        count = EVENT_LOOP_EVENTS

        def tick():
            nonlocal count
            count -= 1
            if count:
                sim.schedule_after(0.001, tick)

        sim.schedule_after(0.001, tick)
        start = time.perf_counter()
        sim.run()
        elapsed = time.perf_counter() - start
        assert count == 0
        return elapsed

    best = _best_of(rounds, one_round)
    return {"events": EVENT_LOOP_EVENTS, "events_per_sec": EVENT_LOOP_EVENTS / best}


def bench_event_loop_drain(rounds: int) -> dict:
    def one_round() -> float:
        sim = Simulator()
        sink = []
        for i in range(DRAIN_EVENTS):
            sim.post_at(i * 1e-4, sink.append, i)
        start = time.perf_counter()
        sim.run()
        elapsed = time.perf_counter() - start
        assert len(sink) == DRAIN_EVENTS
        return elapsed

    best = _best_of(rounds, one_round)
    return {"events": DRAIN_EVENTS, "events_per_sec": DRAIN_EVENTS / best}


def bench_batched_schedule_drain(rounds: int) -> dict:
    def one_round() -> float:
        sim = Simulator()
        sink = []
        times = [i * 1e-4 for i in range(DRAIN_EVENTS)]
        args = [(i,) for i in range(DRAIN_EVENTS)]
        start = time.perf_counter()
        sim.post_batch(times, sink.append, args)
        sim.run()
        elapsed = time.perf_counter() - start
        assert len(sink) == DRAIN_EVENTS
        return elapsed

    best = _best_of(rounds, one_round)
    return {"events": DRAIN_EVENTS, "events_per_sec": DRAIN_EVENTS / best}


def bench_request_pipeline(rounds: int) -> dict:
    routes = RoutingDatabase(uunet_backbone())

    def one_round() -> float:
        sim = Simulator()
        network = Network(sim, routes, track_links=False)
        system = HostingSystem(
            sim, network, ProtocolConfig(), num_objects=100, enable_placement=False
        )
        system.initialize_round_robin()
        completed = 0

        def _count(record):
            nonlocal completed
            completed += 1

        system.request_observers.append(_count)
        start = time.perf_counter()
        for i in range(PIPELINE_REQUESTS):
            system.submit_request(i % 53, i % 100)
            sim.run()
        elapsed = time.perf_counter() - start
        assert completed == PIPELINE_REQUESTS
        return elapsed

    best = _best_of(rounds, one_round)
    return {
        "requests": PIPELINE_REQUESTS,
        "requests_per_sec": PIPELINE_REQUESTS / best,
    }


def bench_large_topology(duration: float) -> dict:
    config, topology = large_topology_scenario(duration=duration)
    start = time.perf_counter()
    metrics = run_scenario(config, topology=topology)
    elapsed = time.perf_counter() - start
    completed = metrics.latency.completed
    return {
        "num_nodes": topology.num_nodes,
        "num_objects": config.num_objects,
        "duration_simulated_s": duration,
        "completed_requests": completed,
        "wall_s": round(elapsed, 3),
        "requests_per_sec": completed / elapsed,
    }


def run_trajectory(quick: bool) -> dict:
    rounds = 3 if quick else 5
    duration = 20.0 if quick else 120.0
    results = {
        "event_loop": bench_event_loop(rounds),
        "event_loop_drain": bench_event_loop_drain(rounds),
        "batched_schedule_drain": bench_batched_schedule_drain(rounds),
        "request_pipeline": bench_request_pipeline(rounds),
        "large_topology": bench_large_topology(duration),
    }
    speedups = {}
    for shape, before in BEFORE.items():
        if before is None:
            continue
        (rate_key, before_rate), = before.items()
        speedups[shape] = round(results[shape][rate_key] / before_rate, 2)
    return {
        "schema": SCHEMA,
        "quick": quick,
        "python": sys.version.split()[0],
        "before": BEFORE,
        "results": results,
        "speedup_vs_before": speedups,
    }


def history_point(artifact: dict, label: str) -> dict:
    """Compact one run into a trajectory-history point.

    One of these per PR is appended to the committed root
    ``BENCH_engine.json``, so the repo carries the measured perf
    trajectory (shape rates plus the deterministic large-topology
    fingerprint) rather than only the latest number.
    """
    rates = {}
    for shape, result in artifact["results"].items():
        rate = result.get("events_per_sec") or result.get("requests_per_sec")
        rates[shape] = round(rate, 1)
    large = artifact["results"]["large_topology"]
    return {
        "label": label,
        "quick": artifact["quick"],
        "rates": rates,
        "large_topology": {
            key: large[key]
            for key in (
                "completed_requests",
                "requests_per_sec",
                "wall_s",
                "duration_simulated_s",
            )
        },
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", default="BENCH_engine.json", help="output artifact path"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI mode: fewer repeats, 20 s large-topology horizon",
    )
    parser.add_argument(
        "--append-history",
        action="store_true",
        help=(
            "carry forward the history list of an existing --out artifact "
            "and append this run as a new trajectory point"
        ),
    )
    parser.add_argument(
        "--label",
        default="HEAD",
        help="trajectory-point label used with --append-history",
    )
    args = parser.parse_args(argv)

    artifact = run_trajectory(args.quick)
    out_path = Path(args.out)
    if args.append_history:
        history: list[dict] = []
        if out_path.exists():
            history = json.loads(out_path.read_text()).get("history", [])
        history.append(history_point(artifact, args.label))
        artifact["history"] = history
    out_path.write_text(json.dumps(artifact, indent=2, sort_keys=True) + "\n")

    for shape, result in artifact["results"].items():
        rate = result.get("events_per_sec") or result.get("requests_per_sec")
        unit = "ev/s" if "events_per_sec" in result else "req/s"
        speedup = artifact["speedup_vs_before"].get(shape)
        suffix = f"  ({speedup:.1f}x vs before)" if speedup else ""
        print(f"{shape:24s} {rate:>12,.0f} {unit}{suffix}")
    large = artifact["results"]["large_topology"]
    print(
        f"large_topology: {large['completed_requests']} requests over "
        f"{large['num_nodes']} hosts / {large['num_objects']} objects in "
        f"{large['wall_s']}s wall"
    )
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
