"""Figure 9: dynamic replication under high system load.

The paper simulates high load by lowering the watermarks to 50/40, which
"on average places the low watermark load on every server", and reports
two effects: responsiveness decreases (recipients near the low watermark
cannot absorb multi-object transfers) and the performance gains diminish
— equilibrium bandwidth is 2% (hot-sites) to 17% (regional) above the
low-load case, because overloaded nodes cannot exchange pages.
"""

from __future__ import annotations

from repro.metrics.report import format_table
from repro.scenarios.presets import WORKLOAD_NAMES

from benchmarks._util import fmt_pct, report


def test_fig9_high_load(paper_results, high_load_results, benchmark):
    def gains():
        table = {}
        for workload in WORKLOAD_NAMES:
            low = paper_results[workload]
            high = high_load_results[workload]
            table[workload] = (
                low.bandwidth_equilibrium(),
                high.bandwidth_equilibrium(),
                low.proximity_reduction(),
                high.proximity_reduction(),
                low.replicas_per_object(),
                high.replicas_per_object(),
            )
        return table

    table = benchmark(gains)
    rows = []
    for workload in WORKLOAD_NAMES:
        low_eq, high_eq, low_prox, high_prox, low_reps, high_reps = table[workload]
        rows.append(
            [
                workload,
                fmt_pct(high_eq / low_eq - 1.0),
                "2%-17% (hot-sites..regional)",
                fmt_pct(low_prox),
                fmt_pct(high_prox),
                f"{low_reps:.2f} -> {high_reps:.2f}",
            ]
        )
    report(
        "Figure 9: high load (watermarks 50/40)",
        format_table(
            [
                "workload",
                "eq bandwidth vs low load",
                "paper",
                "proximity gain (low)",
                "proximity gain (high)",
                "replicas low->high",
            ],
            rows,
        ),
    )

    for workload in WORKLOAD_NAMES:
        low_eq, high_eq, low_prox, high_prox, low_reps, high_reps = table[workload]
        # Gains diminish but do not vanish: high-load equilibrium traffic
        # is higher than low-load, and proximity improvement shrinks.
        assert high_eq > low_eq * 0.98, workload
        assert high_prox < low_prox, workload
        assert high_prox > 0.0, workload
        # Tight watermarks leave less replication headroom.
        assert high_reps <= low_reps + 0.05, workload
