"""Emit the ``BENCH_live.json`` live-saturation trajectory artifact.

Launches the sharded redirector tier as *real OS processes* (``python -m
repro serve`` roles on ephemeral ports, discovered through port files),
steps the offered load through a route-only load generator, and records
requests/sec against latency percentiles for 1, 2 and 4 shards.  The
resulting JSON is the live counterpart of ``BENCH_engine.json``: every
CI run extends a recorded saturation trajectory for the serving tier
instead of a point-in-time anecdote.

Route-only mode measures the redirector tier's own capacity — the
object fetch would fold the hosts' service time into every sample and
hide the tier under test.  ``--direct`` partition-aware routing sends
each ``/route`` straight to the owning shard (the same consistent-hash
ring the gateway uses), so added shards show up as added capacity rather
than as load on a single gateway loop.

Usage::

    python benchmarks/live_saturation.py --quick --out BENCH_live.json

``--quick`` is the CI mode: two short steps per shard count.  The
committed ``benchmarks/reports/live_baseline.json`` is a ``--quick``
artifact; regenerate it (same flag) after an intentional change and
gate with ``python benchmarks/compare_baseline.py --live BENCH_live.json``.

Absolute numbers are machine-bound (a one-core CI runner saturates the
loadgen and every server on the same core, so shard counts beyond the
core count cannot show wall-clock speedup); the gate therefore compares
each configuration against its own baseline with a generous tolerance
rather than asserting cross-shard scaling.
"""

from __future__ import annotations

import argparse
import json
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.live.client import TransportError, http_json  # noqa: E402
from repro.live.config import LiveConfig  # noqa: E402
from repro.live.loadgen import (  # noqa: E402
    LoadgenOptions,
    run_loadgen_multiprocess,
)

SCHEMA = "live-saturation/v1"

#: A step "sustains" its load when the tail stays under this SLA and
#: effectively nothing fails.  Generous on purpose: shared CI runners
#: jitter by tens of milliseconds.
SLA_P99_SECONDS = 0.250
SLA_ERROR_RATE = 0.01

BIND = "127.0.0.1"
STARTUP_TIMEOUT = 30.0


class TierError(RuntimeError):
    """The serving tier failed to come up or died under load."""


def _read_port(path: Path, deadline: float) -> int:
    while time.monotonic() < deadline:
        try:
            text = path.read_text().strip()
        except FileNotFoundError:
            text = ""
        if text:
            return int(text)
        time.sleep(0.05)
    raise TierError(f"timed out waiting for port file {path}")


def _poll(fn, deadline: float, what: str):
    last: Exception | None = None
    while time.monotonic() < deadline:
        try:
            result = fn()
        except (TransportError, OSError, ValueError) as exc:
            last = exc
        else:
            if result is not None:
                return result
        time.sleep(0.05)
    raise TierError(f"timed out waiting for {what}: {last}")


class LiveTier:
    """A gateway + shards + hosts deployment run as child processes."""

    def __init__(self, num_shards: int, num_hosts: int, num_objects: int):
        self.num_shards = num_shards
        self.num_hosts = num_hosts
        self.num_objects = num_objects
        self.processes: list[subprocess.Popen] = []
        self.front: tuple[str, int] | None = None
        self.shard_endpoints: dict[int, tuple[str, int]] = {}
        self._tmp = tempfile.TemporaryDirectory(prefix="live-saturation-")
        self._dir = Path(self._tmp.name)
        self._log = (self._dir / "tier.log").open("w")

    def _spawn(self, role: str, *extra: str) -> subprocess.Popen:
        command = [
            sys.executable, "-m", "repro", "serve",
            "--role", role,
            "--bind", BIND,
            "--base-port", "0",
            "--shards", str(self.num_shards),
            "--hosts", str(self.num_hosts),
            "--objects", str(self.num_objects),
            # Slow the placement machinery right down: the saturation
            # run measures routing throughput, not replication churn.
            "--measurement-interval", "5",
            "--placement-interval", "30",
            *extra,
        ]
        process = subprocess.Popen(
            command, stdout=self._log, stderr=subprocess.STDOUT
        )
        self.processes.append(process)
        return process

    def start(self) -> None:
        deadline = time.monotonic() + STARTUP_TIMEOUT
        if self.num_shards == 1:
            port_file = self._dir / "front.port"
            self._spawn("redirector", "--port-file", str(port_file))
            self.front = (BIND, _read_port(port_file, deadline))
        else:
            port_file = self._dir / "gateway.port"
            self._spawn("gateway", "--port-file", str(port_file))
            self.front = (BIND, _read_port(port_file, deadline))
            gateway = f"{self.front[0]}:{self.front[1]}"
            for shard in range(self.num_shards):
                self._spawn(
                    "shard", "--shard", str(shard), "--gateway", gateway,
                    "--port-file", str(self._dir / f"shard-{shard}.port"),
                )
        front = f"{self.front[0]}:{self.front[1]}"
        for node in range(self.num_hosts):
            self._spawn(
                "host", "--node", str(node), "--gateway", front,
                "--port-file", str(self._dir / f"host-{node}.port"),
            )

        def tier_ready():
            endpoints = http_json(
                self.front, "GET", "/admin/endpoints", timeout=2.0
            )
            shards = endpoints.get("shards", {})
            hosts = endpoints.get("hosts", {})
            if len(shards) == self.num_shards and len(hosts) == self.num_hosts:
                return endpoints
            return None

        endpoints = _poll(tier_ready, deadline, "shard/host registration")
        self.shard_endpoints = {
            int(shard): (address[0], int(address[1]))
            for shard, address in endpoints["shards"].items()
        }

    def check_alive(self) -> None:
        for process in self.processes:
            if process.poll() is not None:
                raise TierError(
                    f"tier process {process.args[5]} exited "
                    f"with {process.returncode} (see tier.log)"
                )

    def stop(self) -> None:
        for process in self.processes:
            if process.poll() is None:
                process.send_signal(signal.SIGTERM)
        for process in self.processes:
            try:
                process.wait(timeout=10)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait()
        self._log.close()
        self._tmp.cleanup()


def run_steps(
    tier: LiveTier,
    config: LiveConfig,
    rates: list[float],
    step_seconds: float,
    processes: int,
    seed: int,
) -> list[dict]:
    steps = []
    for rate in rates:
        tier.check_alive()
        options = LoadgenOptions(
            workload="zipf",
            rate=rate,
            requests=max(50, int(rate * step_seconds)),
            seed=seed,
            concurrency=128,
            timeout=5.0,
            route_only=True,
            shard_endpoints=tier.shard_endpoints,
        )
        stats = run_loadgen_multiprocess(
            tier.front, config, options, processes=processes
        )
        summary = stats.summary()
        step = {
            "offered_rps_target": rate,
            "offered_rps": summary["offered_rps"],
            "achieved_rps": summary["achieved_rps"],
            "error_rate": summary["error_rate"],
            "arrivals_late": summary["arrivals_late"],
            "sched_max_lag_ms": summary["sched_max_lag_ms"],
            "latency_p50_ms": summary.get("latency_p50_ms"),
            "latency_p99_ms": summary.get("latency_p99_ms"),
        }
        steps.append(step)
        p99 = step["latency_p99_ms"]
        p99_text = f"{p99:.1f} ms" if p99 is not None else "-"
        print(
            f"    rate {rate:>7.0f} rps -> achieved "
            f"{step['achieved_rps']:>7.0f} rps, p99 {p99_text}, "
            f"errors {step['error_rate']:.2%}"
        )
    return steps


def sustained_rps(steps: list[dict]) -> float:
    """Highest achieved rate whose step met the latency/error SLA."""
    best = 0.0
    for step in steps:
        p99 = step.get("latency_p99_ms")
        if p99 is None or p99 > SLA_P99_SECONDS * 1000.0:
            continue
        if step["error_rate"] > SLA_ERROR_RATE:
            continue
        best = max(best, step["achieved_rps"])
    return best


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_live.json", help="output path")
    parser.add_argument(
        "--quick", action="store_true",
        help="CI mode: fewer, shorter load steps",
    )
    parser.add_argument(
        "--shard-counts", type=int, nargs="+", default=[1, 2, 4],
        help="shard counts to sweep (default: 1 2 4)",
    )
    parser.add_argument(
        "--hosts", type=int, default=3, help="replica hosts per tier"
    )
    parser.add_argument(
        "--objects", type=int, default=64, help="hosted object count"
    )
    parser.add_argument(
        "--processes", type=int, default=1,
        help="loadgen worker processes per step (default: 1)",
    )
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args(argv)

    if args.quick:
        rates = [150.0, 300.0]
        step_seconds = 1.0
    else:
        rates = [200.0, 400.0, 800.0, 1600.0]
        step_seconds = 2.0

    results: dict[str, dict] = {}
    for num_shards in args.shard_counts:
        print(f"shards={num_shards}: starting tier "
              f"({args.hosts} hosts, {args.objects} objects)")
        tier = LiveTier(num_shards, args.hosts, args.objects)
        config = LiveConfig(
            base_port=0,
            num_shards=num_shards,
            num_hosts=args.hosts,
            num_objects=args.objects,
        )
        try:
            tier.start()
            steps = run_steps(
                tier, config, rates, step_seconds, args.processes, args.seed
            )
        finally:
            tier.stop()
        results[f"shards-{num_shards}"] = {
            "num_shards": num_shards,
            "num_hosts": args.hosts,
            "num_objects": args.objects,
            "steps": steps,
            "sustained_rps": sustained_rps(steps),
        }
        print(f"  sustained: {results[f'shards-{num_shards}']['sustained_rps']:.0f} rps")

    artifact: dict = {
        "schema": SCHEMA,
        "mode": "quick" if args.quick else "full",
        "sla": {
            "p99_ms": SLA_P99_SECONDS * 1000.0,
            "error_rate": SLA_ERROR_RATE,
        },
        "loadgen_processes": args.processes,
        "results": results,
    }
    if "shards-1" in results and "shards-4" in results:
        base = results["shards-1"]["sustained_rps"]
        artifact["speedup_4v1"] = (
            results["shards-4"]["sustained_rps"] / base if base else 0.0
        )
    Path(args.out).write_text(json.dumps(artifact, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
