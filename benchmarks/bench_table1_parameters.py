"""Table 1: simulation parameters.

Asserts that ``paper_parameters()`` reproduces the paper's Table 1
verbatim and prints it next to the scaled configuration the harness
actually runs.  The parameter variants (base vs the Figure 9 high-load
watermarks) are expressed as sweep-engine override points, so the timed
kernel is spec expansion + config validation — the part every sweep
pays per grid point.
"""

from __future__ import annotations

from repro.analysis.tables import table1_rows
from repro.metrics.report import format_table
from repro.scenarios.presets import bench_scale, paper_parameters
from repro.sweep import SweepSpec

from benchmarks._util import report

#: The paper's Table 1, verbatim.
PAPER_TABLE1 = [
    ("Number of objects", "10000"),
    ("Size of object", "12KB"),
    ("Placement decision frequency", "Every 100 seconds"),
    ("Node request rate", "40 requests per sec"),
    ("Server capacity", "200 requests per sec"),
    ("Network delay", "10ms per hop"),
    ("Link bandwidth", "350 KBps"),
    ("Deletion threshold u", "0.03 requests/sec"),
    ("Replication threshold m", "6u, or 0.18 requests/sec"),
]

#: The Figure 9 watermark variant as a sweep override point.
HIGH_LOAD_POINT = {
    "protocol.high_watermark": 50.0,
    "protocol.low_watermark": 40.0,
}


def test_table1_parameters(benchmark):
    def expand():
        spec = SweepSpec(
            base=paper_parameters(),
            points=({}, HIGH_LOAD_POINT),
            name="table1-parameters",
        )
        return spec.runs()

    runs = benchmark(expand)
    assert len(runs) == 2
    assert runs[0].point == "base"
    assert runs[1].point == "high_watermark=50.0,low_watermark=40.0"

    config = runs[0].config
    ours = dict(table1_rows(config))
    for name, value in PAPER_TABLE1:
        assert ours[name] == value, f"{name}: {ours[name]!r} != {value!r}"
    # Watermarks: Table 1 lists both the 90/80 and 50/40 variants, and
    # the high-load point must agree with ``paper_parameters(high_load=True)``.
    high = runs[1].config
    assert (high.protocol.high_watermark, high.protocol.low_watermark) == (50, 40)
    reference = paper_parameters(high_load=True)
    assert high.protocol.high_watermark == reference.protocol.high_watermark
    assert high.protocol.low_watermark == reference.protocol.low_watermark

    scaled = config.scaled(bench_scale())
    rows = [
        [name, value, dict(table1_rows(scaled))[name]]
        for name, value in table1_rows(config)
    ]
    rows.append(
        ["High/low watermarks (high-load run)", "50 / 40 requests/sec",
         f"{high.scaled(bench_scale()).protocol.high_watermark:g} / "
         f"{high.scaled(bench_scale()).protocol.low_watermark:g}"]
    )
    report(
        "Table 1: simulation parameters",
        format_table(
            ["parameter", "paper", f"harness (scale {bench_scale():g})"], rows
        ),
    )
