"""Figure 7: relocation overhead as a percentage of total traffic.

The paper: "the overhead, which occurs because of the replication and
migration of documents, is always below 2.5% of (already reduced) total
traffic".  Relocation traffic does not scale with the load axis, so at
load scale f the raw fraction inflates by ~1/f; the harness reports both
the raw fraction and the full-scale-equivalent one that is comparable to
the paper (see ScenarioResult.overhead_fraction_fullscale).
"""

from __future__ import annotations

from repro.analysis.figures import PAPER_MAX_OVERHEAD, figure7_series
from repro.metrics.report import format_table, sparkline
from repro.scenarios.presets import WORKLOAD_NAMES

from benchmarks._util import fmt_pct, report


def test_fig7_overhead(paper_results, scale, benchmark):
    series = benchmark(
        lambda: {w: figure7_series(r) for w, r in paper_results.items()}
    )

    rows = []
    lines = []
    for workload in WORKLOAD_NAMES:
        result = paper_results[workload]
        rows.append(
            [
                workload,
                fmt_pct(result.overhead_fraction()),
                fmt_pct(result.overhead_fraction_fullscale()),
                fmt_pct(PAPER_MAX_OVERHEAD),
            ]
        )
        lines.append(
            f"{workload:>10} overhead% "
            f"{sparkline(series[workload]['overhead_fraction'])}"
        )
    report(
        "Figure 7: network overhead",
        format_table(
            [
                "workload",
                f"raw fraction (scale {scale:g})",
                "full-scale equivalent",
                "paper bound",
            ],
            rows,
        )
        + "\n\n" + "\n".join(lines),
    )

    for workload in WORKLOAD_NAMES:
        result = paper_results[workload]
        # Same order of magnitude as the paper's 2.5% ceiling: a few
        # percent, not tens.
        assert result.overhead_fraction_fullscale() < 0.06, workload
        # Overhead decays once the system adjusts: the tail of the
        # overhead-fraction series sits below its peak.
        fraction = figure7_series(result)["overhead_fraction"]
        assert fraction.mean_tail(0.25) < fraction.max()
