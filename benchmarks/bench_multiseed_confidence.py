"""Cross-seed robustness of the headline result.

The paper reports single runs; this bench quantifies how much of our
Figure 6 reproduction is seed luck: the Zipf bandwidth reduction is
measured across independent seeds and summarised with a 95% confidence
interval, which must exclude zero by a wide margin and be narrow relative
to the mean (the effect is structural, not stochastic).
"""

from __future__ import annotations

import pytest

from repro.analysis.stats import summarize
from repro.metrics.report import format_table
from repro.scenarios.presets import paper_scenario
from repro.scenarios.runner import run_scenario

from benchmarks._util import fmt_pct, report

SEEDS = (1, 2, 3)
SCALE = 0.15
DURATION = 1500.0


@pytest.fixture(scope="module")
def seed_runs():
    results = {}
    for seed in SEEDS:
        config = paper_scenario("zipf", scale=SCALE, duration=DURATION, seed=seed)
        results[seed] = run_scenario(config)
    return results


def test_bandwidth_reduction_is_seed_robust(seed_runs, benchmark):
    def summarise():
        return {
            "bandwidth": summarize(
                [r.bandwidth_reduction() for r in seed_runs.values()]
            ),
            "proximity": summarize(
                [r.proximity_reduction() for r in seed_runs.values()]
            ),
            "replicas": summarize(
                [r.replicas_per_object() for r in seed_runs.values()]
            ),
        }

    summaries = benchmark(summarise)
    rows = [
        [
            name,
            fmt_pct(s.mean) if name != "replicas" else f"{s.mean:.2f}",
            fmt_pct(s.ci95) if name != "replicas" else f"{s.ci95:.2f}",
            " ".join(
                f"{v:.3f}" for v in s.values
            ),
        ]
        for name, s in summaries.items()
    ]
    report(
        "Seed robustness (zipf, 3 seeds)",
        format_table(["metric", "mean", "95% CI half-width", "per-seed"], rows),
    )

    bandwidth = summaries["bandwidth"]
    # The reduction is large, positive and tight across seeds.
    assert bandwidth.low > 0.2
    assert bandwidth.ci95 < 0.5 * bandwidth.mean
    replicas = summaries["replicas"]
    assert 1.0 < replicas.low and replicas.high < 3.0
