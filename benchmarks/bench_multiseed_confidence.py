"""Cross-seed robustness of the headline result.

The paper reports single runs; this bench quantifies how much of our
Figure 6 reproduction is seed luck: the Zipf bandwidth reduction is
measured across independent seeds and summarised with a 95% confidence
interval, which must exclude zero by a wide margin and be narrow relative
to the mean (the effect is structural, not stochastic).

The seed fan-out goes through :mod:`repro.sweep` — one worker process
per core by default (``REPRO_SWEEP_WORKERS`` overrides) — which is also
an end-to-end exercise of the engine on a real multi-seed experiment.
"""

from __future__ import annotations

import pytest

from repro.metrics.report import format_table
from repro.scenarios.presets import paper_scenario
from repro.sweep import SweepSpec, default_workers, run_sweep

from benchmarks._util import fmt_pct, report

SEEDS = (1, 2, 3)
SCALE = 0.15
DURATION = 1500.0


@pytest.fixture(scope="module")
def seed_sweep():
    spec = SweepSpec(
        base=paper_scenario("zipf", scale=SCALE, duration=DURATION),
        seeds=SEEDS,
        name="multiseed-confidence",
    )
    result = run_sweep(spec, workers=default_workers())
    assert not result.failures, [r.error for r in result.failures]
    return result


def test_bandwidth_reduction_is_seed_robust(seed_sweep, benchmark):
    def summarise():
        return {
            "bandwidth": seed_sweep.metric("bandwidth_reduction"),
            "proximity": seed_sweep.metric("proximity_reduction"),
            "replicas": seed_sweep.metric("replicas_per_object"),
        }

    summaries = benchmark(summarise)
    rows = [
        [
            name,
            fmt_pct(s.mean) if name != "replicas" else f"{s.mean:.2f}",
            fmt_pct(s.ci95) if name != "replicas" else f"{s.ci95:.2f}",
            " ".join(
                f"{v:.3f}" for v in s.values
            ),
        ]
        for name, s in summaries.items()
    ]
    report(
        "Seed robustness (zipf, 3 seeds)",
        format_table(["metric", "mean", "95% CI half-width", "per-seed"], rows),
    )

    bandwidth = summaries["bandwidth"]
    # The reduction is large, positive and tight across seeds.
    assert bandwidth.low > 0.2
    assert bandwidth.ci95 < 0.5 * bandwidth.mean
    replicas = summaries["replicas"]
    assert 1.0 < replicas.low and replicas.high < 3.0
