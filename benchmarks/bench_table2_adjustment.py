"""Table 2: adjustment time and average number of replicas.

Paper values: adjustment 20-23 minutes; replicas per object 2.62
(hot-sites), 2.59 (hot-pages), 1.49 (regional), 1.86 (Zipf).  Adjustment
time is "the time it takes to reach a bandwidth consumption that is 10%
above the average equilibrium bandwidth consumption"; note the paper adds
that "significant traffic reductions occur much quicker than that".
"""

from __future__ import annotations

from repro.analysis.tables import PAPER_TABLE2, table2_rows
from repro.errors import ConfigurationError
from repro.metrics.report import format_table
from repro.scenarios.presets import WORKLOAD_NAMES

from benchmarks._util import report


def test_table2_adjustment_and_replicas(paper_results, benchmark):
    rows = benchmark(lambda: table2_rows(paper_results))
    printable = []
    measured = {}
    for workload, minutes, paper_minutes, replicas, paper_replicas in rows:
        measured[workload] = (minutes, replicas)
        printable.append(
            [
                workload,
                f"{minutes:.1f}",
                f"{paper_minutes:.0f}",
                f"{replicas:.2f}",
                f"{paper_replicas:.2f}",
            ]
        )
    report(
        "Table 2: adjustment time and average replicas",
        format_table(
            [
                "workload",
                "adjustment (min)",
                "paper (min)",
                "replicas/object",
                "paper",
            ],
            printable,
        ),
    )

    assert set(measured) == set(PAPER_TABLE2)
    for workload in WORKLOAD_NAMES:
        minutes, replicas = measured[workload]
        # Adjustment completes within the run and is on the paper's
        # tens-of-minutes timescale (not seconds, not hours).
        assert 2.0 <= minutes <= 45.0, workload
        # Replica counts stay small: a handful of extra replicas buys the
        # whole bandwidth win.
        assert 1.0 <= replicas <= 4.0, workload
    # Regional needs the fewest replicas (paper: 1.49 vs 1.86-2.62) —
    # replicas concentrate regionally instead of spreading everywhere.
    assert measured["regional"][1] == min(r for _, r in measured.values())
    # The concentrated-demand workloads need the most replicas.
    assert measured["hot-sites"][1] >= measured["regional"][1]


def test_table2_bandwidth_settles(paper_results):
    """Guard: every run actually reaches a bandwidth equilibrium, so the
    Table 2 statistics are read off a converged system."""
    for workload, result in paper_results.items():
        try:
            result.adjustment_time()
        except ConfigurationError as exc:  # pragma: no cover - diagnostic
            raise AssertionError(f"{workload} never settled: {exc}") from exc
