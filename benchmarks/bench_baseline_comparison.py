"""Baseline comparison: dynamic replication vs the alternatives.

The paper's figures measure the dynamic protocol against its own static
starting point; this bench makes the comparison explicit and adds the
policy strawmen, all on the Zipf workload:

* static placement (no replication — every figure's t=0 level),
* the paper's full dynamic protocol,
* dynamic placement + round-robin distribution,
* dynamic placement + closest-replica distribution,
* full replication (every object everywhere, Section 4's "trivial
  solution").

Every variant resolves through the ``repro.baselines.STRATEGIES``
registry, so this bench exercises the same code path as
``python -m repro run --strategy ...`` and the gap harness.
"""

from __future__ import annotations

import pytest

from repro.metrics.report import format_table
from repro.scenarios.presets import paper_scenario
from repro.scenarios.runner import run_scenario

from benchmarks._util import report

SCALE = 0.15
DURATION = 1500.0


def _scenario(**overrides):
    config = paper_scenario("zipf", scale=SCALE, duration=DURATION)
    return config.replace(**overrides) if overrides else config


@pytest.fixture(scope="module")
def comparison():
    runs = {}
    for label, strategy in (
        ("static", "static"),
        ("paper dynamic", "paper"),
        ("dynamic + round-robin", "round-robin"),
        ("dynamic + closest", "closest"),
        ("full replication", "full-replication"),
    ):
        result = run_scenario(_scenario(strategy=strategy))
        runs[label] = (
            result.bandwidth.payload_series().mean_tail(),
            result.latency.mean_latency_series().mean_tail(),
            result.latency.mean_response_hops_series().mean_tail(),
            result.latency.drop_rate(),
        )
    return runs


def test_baseline_comparison(comparison, benchmark):
    static_bw = comparison["static"][0]

    def build_rows():
        rows = []
        for label, (bw, lat, hops, drops) in comparison.items():
            rows.append(
                [
                    label,
                    f"{bw / static_bw * 100:.0f}%",
                    f"{lat:.3f}s",
                    f"{hops:.2f}",
                    f"{drops * 100:.1f}%",
                ]
            )
        return rows

    rows = benchmark(build_rows)
    report(
        "Baseline comparison (Zipf): equilibrium vs static placement",
        format_table(
            ["policy", "bandwidth vs static", "latency", "resp hops", "drops"],
            rows,
        ),
    )

    paper_bw, paper_lat, paper_hops, _ = comparison["paper dynamic"]
    static = comparison["static"]
    # The paper's protocol beats static placement on both axes.
    assert paper_bw < static[0] * 0.75
    assert paper_hops < static[2]
    # Round-robin distribution wastes proximity: worse hops than the
    # paper's algorithm under identical placement machinery.
    assert comparison["dynamic + round-robin"][2] > paper_hops
    # Closest-only distribution starves the placement algorithm of the
    # load-spreading it assumes: at equilibrium it is strictly worse on
    # both latency and response distance than the paper's algorithm.
    # (Its catastrophic failure mode — an unsheddable local hotspot — is
    # demonstrated directly in examples/hotspot_relief.py and the
    # Section 3 micro-scenarios, where demand concentrates at one site.)
    closest = comparison["dynamic + closest"]
    assert closest[1] > paper_lat
    assert closest[2] > paper_hops
