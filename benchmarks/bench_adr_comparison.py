"""Related-work comparison: the paper's protocol vs ADR (Wolfson et al.).

Section 1.1 argues ADR is unsuited to Internet hosting on four counts:
the logical-tree/physical-topology mismatch, closest-replica-only service
(no load sharing), neighbour-only (hop-by-hop) replication, and
contiguous replica sets.  This bench makes the first and third claims
quantitative on the regional workload — the most locality-friendly
setting, i.e. the *best case* for ADR — by measuring the per-read
physical byte-hop cost and the adjustment trajectory of both protocols
under identical demand (including a 1% provider-update write mix, since
ADR's tests are read/write driven).
"""

from __future__ import annotations

import pytest

from repro.baselines.adr import AdrSystem
from repro.metrics.report import format_table
from repro.network.transport import Network
from repro.routing.routes_db import RoutingDatabase
from repro.scenarios.presets import paper_scenario
from repro.scenarios.runner import make_workload, run_scenario
from repro.sim.engine import Simulator
from repro.sim.rng import RngFactory
from repro.topology.uunet import uunet_backbone

from benchmarks._util import report

SCALE = 0.15
DURATION = 1500.0
WRITE_FRACTION = 0.01


def _run_adr(config):
    sim = Simulator()
    topology = uunet_backbone(config.topology_seed)
    routes = RoutingDatabase(topology)
    network = Network(sim, routes, track_links=False)
    system = AdrSystem(
        sim,
        network,
        num_objects=config.num_objects,
        object_size=config.object_size,
        adjustment_interval=config.protocol.placement_interval,
    )
    system.initialize_round_robin()
    system.start()
    workload = make_workload(config, topology, RngFactory(config.seed))
    rng = RngFactory(config.seed).stream("adr-driver")
    interval = 1.0 / config.node_request_rate
    # Same per-gateway request streams as the hosting system's generators,
    # with a write mixed in per WRITE_FRACTION.
    for gateway in topology.nodes:
        t = rng.random() * interval
        while t < DURATION:
            obj = workload.sample(gateway, rng)
            if rng.random() < WRITE_FRACTION:
                sim.schedule_at(t, system.submit_write, obj)
            else:
                sim.schedule_at(t, system.submit_read, gateway, obj)
            t += interval
    # Track the mean read cost over the final third for the equilibrium.
    marker = {}

    def snapshot():
        marker["reads"] = system.reads
        marker["byte_hops"] = system.read_byte_hops

    sim.schedule_at(DURATION * 2 / 3, snapshot)
    sim.run(until=DURATION)
    system.stop()
    tail_reads = system.reads - marker["reads"]
    tail_cost = (
        (system.read_byte_hops - marker["byte_hops"]) / tail_reads
        if tail_reads
        else 0.0
    )
    return system, tail_cost


@pytest.fixture(scope="module")
def comparison():
    config = paper_scenario("regional", scale=SCALE, duration=DURATION)
    paper = run_scenario(config)
    # Equilibrium per-request response byte-hops for the paper system.
    paper_cost = (
        paper.latency.mean_response_hops_series().mean_tail()
        * config.object_size
    )
    start_cost = (
        paper.latency.mean_response_hops_series().values[0] * config.object_size
    )
    adr, adr_cost = _run_adr(config)
    return config, paper, paper_cost, start_cost, adr, adr_cost


def test_adr_comparison(comparison, benchmark):
    config, paper, paper_cost, start_cost, adr, adr_cost = comparison

    def build_rows():
        return [
            [
                "paper protocol",
                f"{paper_cost / 1024:.1f}",
                f"{paper.replicas_per_object():.2f}",
                f"{len(paper.system.placement_events)}",
            ],
            [
                "ADR (tree)",
                f"{adr_cost / 1024:.1f}",
                f"{adr.replicas_per_object():.2f}",
                f"{adr.expansions + adr.contractions + adr.switches}",
            ],
            ["static placement (t=0 level)", f"{start_cost / 1024:.1f}", "1.00", "0"],
        ]

    rows = benchmark(build_rows)
    report(
        "ADR comparison (regional workload, 1% writes)",
        format_table(
            [
                "protocol",
                "KB-hops per read (equilibrium)",
                "replicas/object",
                "relocation ops",
            ],
            rows,
        )
        + "\nADR minimises read+write communication only: with Internet-"
        "typical read-heavy\ndemand it buys low read cost by replicating "
        "several-fold more and churning\nharder — the paper's point that "
        "read/write cost 'is not a suitable cost metric\nfor the "
        "Internet', where storage, churn and load sharing all matter.",
    )

    # Both protocols improve on static placement in ADR's best case.
    assert paper_cost < start_cost
    assert adr_cost < start_cost
    # The paper's quantitative critique, visible in the numbers:
    # 1. ADR's read/write-only cost metric over-replicates under
    #    read-mostly demand — several times the paper protocol's replica
    #    count (storage the metric does not price)...
    assert adr.replicas_per_object() > 2 * paper.replicas_per_object()
    # 2. ...with heavier relocation churn (hop-by-hop expansion re-copies
    #    objects along every tree edge)...
    assert (
        adr.expansions + adr.contractions + adr.switches
        > len(paper.system.placement_events)
    )
    # 3. ...and no load constraint whatsoever: nothing in ADR's tests
    #    reads server load, so a swamped replica keeps every request
    #    (tests/baselines/test_adr.py::test_adr_cannot_shed_a_local_hotspot
    #    demonstrates the failure mode directly).
    assert adr.expansions > 0
    # The paper protocol keeps its replica budget small (Table 2 scale).
    assert paper.replicas_per_object() < 2.0
