"""Shared scenario runs for the benchmark harness.

Figures 6-8 and Table 2 all read the same four workload runs, and
Figure 9 the four high-load runs; running them once per pytest session
keeps the full harness tractable.  The load scale defaults to
``DEFAULT_BENCH_SCALE`` (see repro.scenarios.presets); set
``REPRO_FULL_SCALE=1`` for paper scale or ``REPRO_SCALE=x`` to override.
"""

from __future__ import annotations

import time

import pytest

from repro.scenarios.presets import WORKLOAD_NAMES, bench_scale, paper_scenario
from repro.scenarios.runner import ScenarioResult, run_scenario

#: Simulated duration for harness runs: long enough for every workload to
#: reach equilibrium with a stable tail (the paper's adjustment times are
#: 20-23 min; hot-sites needs the longest runway).
BENCH_DURATION = 3000.0


def _run_grid(high_load: bool) -> dict[str, ScenarioResult]:
    results: dict[str, ScenarioResult] = {}
    for workload in WORKLOAD_NAMES:
        started = time.time()
        config = paper_scenario(
            workload, high_load=high_load, duration=BENCH_DURATION
        )
        results[workload] = run_scenario(config)
        label = "high-load" if high_load else "low-load"
        print(
            f"[bench setup] {label} {workload}: "
            f"{time.time() - started:.0f}s wall",
            flush=True,
        )
    return results


@pytest.fixture(scope="session")
def paper_results() -> dict[str, ScenarioResult]:
    """The four paper evaluation runs (low load, watermarks 90/80)."""
    return _run_grid(high_load=False)


@pytest.fixture(scope="session")
def high_load_results() -> dict[str, ScenarioResult]:
    """The four Figure 9 runs (high load, watermarks 50/40)."""
    return _run_grid(high_load=True)


@pytest.fixture(scope="session")
def scale() -> float:
    return bench_scale()
