"""Substrate microbenchmarks: simulator and platform throughput.

Not a paper figure — these quantify the simulation substrate itself
(event-loop throughput, pending-queue drain rate, end-to-end request
cost, routing precomputation, and a 500-host / 100k-object scenario) so
regressions in the harness are caught before they silently stretch every
reproduction run.  ``benchmarks/engine_trajectory.py`` runs the same
shapes standalone and emits the ``BENCH_engine.json`` trajectory
artifact CI gates on.

Hermeticity: the request-pipeline benchmarks build a **fresh**
simulator/hosting system for every measured round via
``benchmark.pedantic(setup=...)``.  The previous revision shared one
system across warmup and measurement rounds, so its clock, request
counters and round-robin cursor drifted — later rounds measured a
different (larger, busier) system than earlier ones.  Only the immutable
routing database is shared across rounds.
"""

from __future__ import annotations

from repro.core.config import ProtocolConfig
from repro.core.protocol import HostingSystem
from repro.network.transport import Network
from repro.obs.tracer import DecisionTracer
from repro.routing.routes_db import RoutingDatabase
from repro.scenarios.presets import large_topology_scenario
from repro.scenarios.runner import run_scenario
from repro.sim.engine import Simulator
from repro.topology.uunet import uunet_backbone

#: Requests per hermetic pipeline round — enough to amortise the
#: per-round system build without reintroducing cross-round state.
PIPELINE_BATCH = 2_000

#: Pre-scheduled events for the drain benchmark: the
#: large-pending-queue shape where heap comparison cost dominates.
DRAIN_EVENTS = 200_000


def test_event_loop_throughput(benchmark):
    """Schedule-and-fire cost of one bare self-scheduling event."""

    def run_events():
        sim = Simulator()
        count = 10_000

        def tick():
            nonlocal count
            count -= 1
            if count:
                sim.schedule_after(0.001, tick)

        sim.schedule_after(0.001, tick)
        sim.run()
        return count

    assert benchmark(run_events) == 0


def test_event_queue_drain_throughput(benchmark):
    """Drain rate with a deep pending queue (the scale-scenario shape).

    200k handle-free events are pre-scheduled, then ``run()`` drains
    them; with this many entries pending, per-pop comparison cost is the
    whole story — exactly what the bucketed queue exists to cut.
    """

    def setup():
        sim = Simulator()
        sink = []
        for i in range(DRAIN_EVENTS):
            sim.post_at(i * 1e-4, sink.append, i)
        return (sim, sink), {}

    def drain(sim, sink):
        sim.run()
        return len(sink)

    result = benchmark.pedantic(drain, setup=setup, rounds=5)
    assert result == DRAIN_EVENTS


def test_batched_scheduling_throughput(benchmark):
    """post_batch + drain for one pre-drawn arrival vector."""

    def setup():
        sim = Simulator()
        sink = []
        times = [i * 1e-4 for i in range(DRAIN_EVENTS)]
        args = [(i,) for i in range(DRAIN_EVENTS)]
        return (sim, sink, times, args), {}

    def schedule_and_drain(sim, sink, times, args):
        sim.post_batch(times, sink.append, args)
        sim.run()
        return len(sink)

    result = benchmark.pedantic(schedule_and_drain, setup=setup, rounds=5)
    assert result == DRAIN_EVENTS


_ROUTES = None


def _uunet_routes() -> RoutingDatabase:
    # The routing database is immutable; sharing it across rounds leaks
    # no state, and rebuilding it per round would swamp the measurement.
    global _ROUTES
    if _ROUTES is None:
        _ROUTES = RoutingDatabase(uunet_backbone())
    return _ROUTES


def _fresh_system(traced: bool = False):
    sim = Simulator()
    network = Network(sim, _uunet_routes(), track_links=False)
    system = HostingSystem(
        sim, network, ProtocolConfig(), num_objects=100, enable_placement=False
    )
    if traced:
        system.attach_tracer(DecisionTracer())
    system.initialize_round_robin()
    return sim, system


def _pipeline_round(sim, system):
    # Completion is observable only through the request-observer hook;
    # with placement and faults off every submitted request completes.
    completed = 0

    def _count(record):
        nonlocal completed
        completed += 1

    system.request_observers.append(_count)
    for i in range(PIPELINE_BATCH):
        system.submit_request(i % 53, i % 100)
        sim.run()
    return completed


def test_request_pipeline_throughput(benchmark):
    """Full request flow: distributor -> redirector -> host -> response."""

    def setup():
        return _fresh_system(), {}

    result = benchmark.pedantic(_pipeline_round, setup=setup, rounds=5)
    assert result == PIPELINE_BATCH


def test_request_pipeline_throughput_traced(benchmark):
    """The same hermetic request flow with the decision tracer attached.

    Quantifies the tracing overhead on the hottest instrumented path
    (one ChooseReplica record per request) against the benchmark above.
    """

    def setup():
        return _fresh_system(traced=True), {}

    result = benchmark.pedantic(_pipeline_round, setup=setup, rounds=5)
    assert result == PIPELINE_BATCH


def test_routing_precomputation(benchmark):
    """All-pairs deterministic shortest paths over the 53-node backbone."""
    topology = uunet_backbone()
    benchmark(lambda: RoutingDatabase(topology))


def test_large_topology_scenario(benchmark):
    """The protocol at 500 hosts / 100k objects (short horizon).

    One full ``run_scenario`` over the geometric 500-node backbone with
    batched arrivals — the ROADMAP scale target, kept to a 20-second
    simulated horizon so the benchmark suite stays runnable; the
    trajectory script runs the full-length variant.
    """
    config, topology = large_topology_scenario(duration=20.0)

    def run():
        return run_scenario(config, topology=topology).latency.completed

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result > 50_000
