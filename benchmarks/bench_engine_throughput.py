"""Substrate microbenchmarks: simulator and platform throughput.

Not a paper figure — these quantify the simulation substrate itself
(event-loop throughput, end-to-end request cost, routing precomputation)
so regressions in the harness are caught before they silently stretch
every reproduction run.
"""

from __future__ import annotations

from repro.core.config import ProtocolConfig
from repro.network.transport import Network
from repro.core.protocol import HostingSystem
from repro.obs.tracer import DecisionTracer
from repro.routing.routes_db import RoutingDatabase
from repro.sim.engine import Simulator
from repro.topology.uunet import uunet_backbone


def test_event_loop_throughput(benchmark):
    """Schedule-and-fire cost of one bare event."""

    def run_events():
        sim = Simulator()
        count = 10_000

        def tick():
            nonlocal count
            count -= 1
            if count:
                sim.schedule_after(0.001, tick)

        sim.schedule_after(0.001, tick)
        sim.run()
        return count

    assert benchmark(run_events) == 0


def test_request_pipeline_throughput(benchmark):
    """Full request flow: distributor -> redirector -> host -> response."""
    sim = Simulator()
    routes = RoutingDatabase(uunet_backbone())
    network = Network(sim, routes, track_links=False)
    system = HostingSystem(
        sim, network, ProtocolConfig(), num_objects=100, enable_placement=False
    )
    system.initialize_round_robin()
    state = {"i": 0}

    def one_request():
        state["i"] += 1
        system.submit_request(state["i"] % 53, state["i"] % 100)
        sim.run()

    benchmark(one_request)


def test_request_pipeline_throughput_traced(benchmark):
    """The same request flow with the decision tracer attached.

    Quantifies the tracing overhead on the hottest instrumented path
    (one ChooseReplica record per request) against the benchmark above.
    """
    sim = Simulator()
    routes = RoutingDatabase(uunet_backbone())
    network = Network(sim, routes, track_links=False)
    system = HostingSystem(
        sim, network, ProtocolConfig(), num_objects=100, enable_placement=False
    )
    system.attach_tracer(DecisionTracer())
    system.initialize_round_robin()
    state = {"i": 0}

    def one_request():
        state["i"] += 1
        system.submit_request(state["i"] % 53, state["i"] % 100)
        sim.run()

    benchmark(one_request)


def test_routing_precomputation(benchmark):
    """All-pairs deterministic shortest paths over the 53-node backbone."""
    topology = uunet_backbone()
    benchmark(lambda: RoutingDatabase(topology))
