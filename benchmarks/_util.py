"""Shared helpers for the benchmark harness.

Benchmarks print paper-vs-measured tables.  pytest captures stdout, so
:func:`report` writes through to the real stdout (visible in the tee'd
bench log) and also appends to ``benchmarks/reports/<name>.txt`` so every
figure/table reproduction leaves a durable artifact.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPORT_DIR = Path(__file__).parent / "reports"


def report(name: str, text: str) -> None:
    """Emit a reproduction report to the console and to a file."""
    banner = f"\n{'=' * 72}\n{name}\n{'=' * 72}\n"
    output = banner + text + "\n"
    sys.__stdout__.write(output)
    sys.__stdout__.flush()
    REPORT_DIR.mkdir(exist_ok=True)
    path = REPORT_DIR / f"{name.split(':')[0].strip().replace(' ', '_').lower()}.txt"
    path.write_text(output)


def fmt_pct(value: float) -> str:
    return f"{value * 100:.1f}%"
